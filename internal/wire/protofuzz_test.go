package wire_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/wire"

	// Imported for their init-time wire.RegisterBinary calls: the fuzz below
	// round-trips every registered protocol payload, so the registries of
	// both protocol packages must be populated.
	_ "github.com/spritedht/sprite/internal/chord"
	_ "github.com/spritedht/sprite/internal/core"
)

// feeder turns the fuzzer's byte string into an endless, deterministic
// stream of primitive values for the reflection filler. Wrapping around the
// input keeps every byte of fuzz data influential without ever running dry.
type feeder struct {
	data []byte
	off  int
}

func (f *feeder) next() byte {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.off%len(f.data)]
	f.off++
	return b
}

func (f *feeder) uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(f.next())
	}
	return v
}

func (f *feeder) str() string {
	n := int(f.next() % 8)
	b := make([]byte, n)
	for i := range b {
		b[i] = f.next()
	}
	return string(b)
}

// fill populates v with deterministic pseudo-random content drawn from fd.
// It covers exactly the kinds protocol payloads use; a payload gaining a
// field of an unsupported kind fails the fuzz loudly so the filler is
// extended alongside the codec.
func fill(t *testing.T, v reflect.Value, fd *feeder) {
	switch v.Kind() {
	case reflect.String:
		v.SetString(fd.str())
	case reflect.Bool:
		v.SetBool(fd.next()&1 == 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(fd.uint64()) >> 16)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(fd.uint64() >> 16)
	case reflect.Float32, reflect.Float64:
		// Built from an integer so the value is finite and exactly
		// representable — NaN would break DeepEqual, infinities would not.
		v.SetFloat(float64(int64(fd.uint64())>>32) / 16)
	case reflect.Slice:
		n := int(fd.next() % 4)
		if n == 0 {
			return // nil: both codecs round-trip empty containers to nil
		}
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fill(t, s.Index(i), fd)
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fill(t, v.Index(i), fd)
		}
	case reflect.Map:
		n := int(fd.next() % 4)
		if n == 0 {
			return
		}
		m := reflect.MakeMapWithSize(v.Type(), n)
		for i := 0; i < n; i++ {
			k := reflect.New(v.Type().Key()).Elem()
			fill(t, k, fd)
			mv := reflect.New(v.Type().Elem()).Elem()
			fill(t, mv, fd)
			m.SetMapIndex(k, mv)
		}
		v.Set(m)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if !v.Type().Field(i).IsExported() {
				continue
			}
			fill(t, v.Field(i), fd)
		}
	default:
		t.Fatalf("fill: unsupported kind %v in %v — extend the filler alongside the new payload field", v.Kind(), v.Type())
	}
}

// FuzzBinaryProtocol round-trips EVERY registered protocol payload — chord's
// and core's, discovered through wire.BinaryPrototypes — through both codecs
// and demands the results be identical under reflect.DeepEqual: the binary
// codec must be a drop-in replacement for gob on the wire, or mixed
// codec-version peers would disagree about what was said. It then feeds the
// decoder truncations, single-bit corruptions, and raw fuzz garbage, which
// must all fail (or decode to something) without panicking or sizing an
// allocation from an unvalidated length.
func FuzzBinaryProtocol(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("seed-data-1234567890 with spread"), uint8(3))
	f.Add([]byte{0xff, 0x01, 0x80, 0x7f, 0x00, 0xfe, 0x41}, uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		protos := wire.BinaryPrototypes()
		if len(protos) == 0 {
			t.Fatal("no binary codecs registered — chord/core imports lost their init effect")
		}
		for _, proto := range protos {
			fd := &feeder{data: data}
			v := reflect.New(reflect.TypeOf(proto)).Elem()
			fill(t, v, fd)
			val := v.Interface()

			enc, ok := wire.AppendBinary(nil, val)
			if !ok {
				t.Fatalf("%T listed by BinaryPrototypes but not encodable", val)
			}
			dec, err := wire.DecodeBinary(enc)
			if err != nil {
				t.Fatalf("decode own encoding of %#v: %v", val, err)
			}

			var iface any = val
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&iface); err != nil {
				t.Fatalf("gob encode %#v: %v", val, err)
			}
			var gout any
			if err := gob.NewDecoder(&buf).Decode(&gout); err != nil {
				t.Fatalf("gob decode %T: %v", val, err)
			}
			if !reflect.DeepEqual(dec, gout) {
				t.Fatalf("codecs disagree for %T:\nbinary: %#v\ngob:    %#v", val, dec, gout)
			}

			for n := 0; n < len(enc); n++ {
				wire.DecodeBinary(enc[:n]) // must not panic
			}
			if len(enc) > 0 {
				mut := append([]byte(nil), enc...)
				mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
				wire.DecodeBinary(mut) // must not panic
			}
		}
		wire.DecodeBinary(data) // raw garbage must not panic
	})
}
