// The hand-rolled binary codec for hot-path protocol payloads.
//
// Gob is a fine bootstrap codec — self-describing, zero schema maintenance —
// but it re-transmits type descriptors on every fresh stream and walks
// reflection on every value, which is exactly the per-message overhead a
// DHT-scale transport cannot afford. The binary codec trades that generality
// for a fixed, length-disciplined wire form: each registered payload type is
// assigned a stable 16-bit kind and a pair of hand-written encode/decode
// functions over varint/length-prefixed primitives. Types that never
// registered a binary codec still travel as gob (the transport tags every
// payload with the codec that produced it), so the hot path gets the fast
// encoding while exotic or test-only payloads keep working unchanged.
//
// Safety discipline: decoding works over a single []byte with a sticky
// error, and every declared length (strings, byte runs, element counts) is
// validated against the bytes actually remaining before any allocation is
// sized from it. A hostile or truncated frame can therefore fail the decode
// but can neither panic nor balloon memory — the property FuzzCodec and
// FuzzBinaryProtocol lean on.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Kind ranges, one block per registering package, so the numbering is stable
// regardless of package-init order. Both ends of a connection run the same
// binary in this repository's deployments; the explicit constants keep the
// assignment auditable (and collision-checked at registration).
const (
	// KindChordBase .. KindChordBase+15 are reserved for internal/chord.
	KindChordBase uint16 = 1
	// KindCoreBase .. KindCoreBase+31 are reserved for internal/core.
	KindCoreBase uint16 = 16
	// KindSketchBase .. KindSketchBase+7 are reserved for internal/sketch.
	KindSketchBase uint16 = 48
	// KindTestBase and up are free for tests.
	KindTestBase uint16 = 4096
)

// EncodeFunc appends v's binary form to the encoder. It must handle exactly
// the concrete type it was registered for.
type EncodeFunc func(e *Encoder, v any)

// DecodeFunc reads one value back. On malformed input it should rely on the
// decoder's sticky error (the caller checks d.Err) and may return a partial
// value.
type DecodeFunc func(d *Decoder) any

type binaryCodec struct {
	kind uint16
	typ  reflect.Type
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	binByKind = make(map[uint16]*binaryCodec)
	binByType = make(map[reflect.Type]*binaryCodec)
)

// RegisterBinary installs a binary codec for prototype's concrete type under
// the given kind. Registration normally happens in package init functions;
// duplicate kinds or types panic immediately (a mis-wired codec table must
// never reach the network). The type is also gob-registered so the fallback
// path can carry it too.
func RegisterBinary(kind uint16, prototype any, enc EncodeFunc, dec DecodeFunc) {
	mu.Lock()
	defer mu.Unlock()
	t := reflect.TypeOf(prototype)
	if prev, ok := binByKind[kind]; ok {
		panic(fmt.Sprintf("wire: binary kind %d already registered for %v", kind, prev.typ))
	}
	if _, ok := binByType[t]; ok {
		panic(fmt.Sprintf("wire: binary codec already registered for %v", t))
	}
	c := &binaryCodec{kind: kind, typ: t, enc: enc, dec: dec}
	binByKind[kind] = c
	binByType[t] = c
	registerGobLocked(prototype)
}

// HasBinary reports whether v's concrete type has a registered binary codec.
func HasBinary(v any) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := binByType[reflect.TypeOf(v)]
	return ok
}

// BinaryPrototypes returns one zero prototype per registered binary codec,
// ordered by kind. Tests use it to round-trip every protocol payload
// generically.
func BinaryPrototypes() []any {
	mu.Lock()
	defer mu.Unlock()
	kinds := make([]int, 0, len(binByKind))
	for k := range binByKind {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	out := make([]any, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, reflect.New(binByKind[uint16(k)].typ).Elem().Interface())
	}
	return out
}

// AppendBinary appends the binary encoding of v — a 2-byte kind followed by
// the codec's field stream — to dst and reports whether v's type had a
// registered codec. When it reports false, dst is returned unchanged and the
// caller should fall back to gob.
func AppendBinary(dst []byte, v any) ([]byte, bool) {
	mu.Lock()
	c, ok := binByType[reflect.TypeOf(v)]
	mu.Unlock()
	if !ok {
		return dst, false
	}
	e := Encoder{b: dst}
	e.b = binary.BigEndian.AppendUint16(e.b, c.kind)
	c.enc(&e, v)
	return e.b, true
}

// DecodeBinary decodes a payload produced by AppendBinary. Unknown kinds and
// malformed field streams return an error; trailing garbage after a complete
// value does too (a frame carries exactly one payload).
func DecodeBinary(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("wire: binary payload too short (%d bytes)", len(data))
	}
	kind := binary.BigEndian.Uint16(data)
	mu.Lock()
	c, ok := binByKind[kind]
	mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown binary kind %d", kind)
	}
	d := Decoder{b: data[2:]}
	v := c.dec(&d)
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode kind %d (%v): %w", kind, c.typ, d.err)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wire: decode kind %d (%v): %d trailing bytes", kind, c.typ, len(d.b)-d.off)
	}
	return v, nil
}

// Encoder appends primitive values to a byte slice. The zero value appends
// to a nil slice; use NewEncoder to reuse a buffer.
type Encoder struct {
	b []byte
}

// NewEncoder returns an encoder appending to dst.
func NewEncoder(dst []byte) *Encoder { return &Encoder{b: dst} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.b }

// Append appends v's full binary encoding (kind prefix included) in place,
// reporting whether v's type had a registered codec; the buffer is unchanged
// when it reports false. This is AppendBinary for callers composing a larger
// frame in one buffer.
func (e *Encoder) Append(v any) bool {
	b, ok := AppendBinary(e.b, v)
	if ok {
		e.b = b
	}
	return ok
}

// Uint appends v as an unsigned varint.
func (e *Encoder) Uint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Int appends v as a zig-zag varint.
func (e *Encoder) Int(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Bool appends one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Float appends v as 8 fixed bytes (IEEE 754 bits, big endian).
func (e *Encoder) Float(v float64) {
	e.b = binary.BigEndian.AppendUint64(e.b, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Raw appends b verbatim, no length prefix — for fixed-width fields (ring
// IDs) whose size both ends know.
func (e *Encoder) Raw(b []byte) { e.b = append(e.b, b...) }

// StringSlice appends a count-prefixed string slice.
func (e *Encoder) StringSlice(s []string) {
	e.Uint(uint64(len(s)))
	for _, v := range s {
		e.String(v)
	}
}

// Decoder reads primitive values from a byte slice with a sticky error: the
// first malformed field poisons the decoder and every later read returns a
// zero value. Declared lengths and counts are capped by the bytes remaining,
// so no read allocates more than the input could possibly justify.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{b: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Fail records err as the decoder's sticky error if none is set yet. Codecs
// whose payloads carry structure beyond the primitive layer (e.g. embedded
// encoded blocks) use it to poison the decode when their own validation
// rejects the bytes.
func (d *Decoder) Fail(err error) {
	if err != nil && d.err == nil {
		d.err = err
	}
}

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Uint reads an unsigned varint.
func (d *Decoder) Uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a zig-zag varint.
func (d *Decoder) Int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Bool reads one byte; any nonzero value is true.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	v := d.b[d.off] != 0
	d.off++
	return v
}

// Float reads 8 fixed bytes.
func (d *Decoder) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string. The declared length is validated
// against the remaining input before the string is materialized.
func (d *Decoder) String() string {
	n := d.Uint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("declared string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Raw reads n verbatim bytes into a fresh slice.
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail("declared raw length %d exceeds %d remaining bytes", n, d.Remaining())
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += n
	return out
}

// Count reads an element count whose elements each occupy at least minBytes
// on the wire, rejecting counts the remaining input cannot hold. This is the
// over-allocation guard for slices and maps: a frame claiming a billion
// elements fails here instead of sizing a billion-element allocation.
func (d *Decoder) Count(minBytes int) int {
	n := d.Uint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(d.Remaining()/minBytes) {
		d.fail("declared count %d exceeds capacity of %d remaining bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// StringSlice reads a count-prefixed string slice. A zero count decodes as a
// nil slice, matching gob's round-trip of empty slices so the two codecs are
// interchangeable under reflect.DeepEqual.
func (d *Decoder) StringSlice() []string {
	n := d.Count(1)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	return out
}
