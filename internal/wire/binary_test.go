package wire

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"strings"
	"testing"
)

// binPayload is a test payload covering every primitive the codec offers.
type binPayload struct {
	Term  string
	Freq  int64
	Count uint64
	Hot   bool
	Score float64
	Query []string
	ID    [4]byte
}

const kindBinPayload = KindTestBase + 7

func init() {
	RegisterBinary(kindBinPayload, binPayload{},
		func(e *Encoder, v any) {
			p := v.(binPayload)
			e.String(p.Term)
			e.Int(p.Freq)
			e.Uint(p.Count)
			e.Bool(p.Hot)
			e.Float(p.Score)
			e.StringSlice(p.Query)
			e.Raw(p.ID[:])
		},
		func(d *Decoder) any {
			var p binPayload
			p.Term = d.String()
			p.Freq = d.Int()
			p.Count = d.Uint()
			p.Hot = d.Bool()
			p.Score = d.Float()
			p.Query = d.StringSlice()
			copy(p.ID[:], d.Raw(len(p.ID)))
			return p
		})
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := []binPayload{
		{},
		{Term: "chord", Freq: -42, Count: 1 << 40, Hot: true, Score: 2.5,
			Query: []string{"peer", "to", "peer"}, ID: [4]byte{1, 2, 3, 4}},
		{Term: strings.Repeat("x", 300), Score: math.Inf(-1)},
	}
	for _, in := range cases {
		data, ok := AppendBinary(nil, in)
		if !ok {
			t.Fatal("binPayload not registered")
		}
		out, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip changed value:\n in: %#v\nout: %#v", in, out)
		}
	}
}

func TestBinaryUnregisteredFallsBack(t *testing.T) {
	type notRegistered struct{ X int }
	if _, ok := AppendBinary(nil, notRegistered{1}); ok {
		t.Fatal("unregistered type claimed a binary codec")
	}
	if HasBinary(notRegistered{}) {
		t.Fatal("HasBinary true for unregistered type")
	}
	if !HasBinary(binPayload{}) {
		t.Fatal("HasBinary false for registered type")
	}
}

func TestBinaryDecodeRejectsTruncationAndTrailing(t *testing.T) {
	data, _ := AppendBinary(nil, binPayload{Term: "abcdef", Query: []string{"q1", "q2"}})
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeBinary(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	if _, err := DecodeBinary(append(append([]byte{}, data...), 0xEE)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := DecodeBinary([]byte{0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestBinaryLengthCapped pins the over-allocation guard: a frame declaring a
// huge string or count must fail before sizing an allocation from it.
func TestBinaryLengthCapped(t *testing.T) {
	var e Encoder
	e.Uint(1 << 40) // declared string length: 1 TiB
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Fatalf("huge declared string length accepted (got %d bytes, err %v)", len(s), d.Err())
	}

	var e2 Encoder
	e2.Uint(math.MaxUint64) // declared element count
	d2 := NewDecoder(e2.Bytes())
	if n := d2.Count(8); n != 0 || d2.Err() == nil {
		t.Fatalf("huge declared count accepted: %d, err %v", n, d2.Err())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x03, 'a'}) // declares 3 bytes, has 1
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("truncated string did not error")
	}
	first := d.Err()
	if v := d.Uint(); v != 0 {
		t.Fatalf("read after error returned %d", v)
	}
	if d.Err() != first {
		t.Fatal("sticky error was replaced")
	}
}

func TestEmptySliceDecodesNilLikeGob(t *testing.T) {
	in := binPayload{Query: []string{}}
	data, _ := AppendBinary(nil, in)
	out, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	// Gob round-trips empty slices to nil; the binary codec must agree so the
	// two codecs are interchangeable on the wire.
	var buf bytes.Buffer
	var iface any = in
	if err := gob.NewEncoder(&buf).Encode(&iface); err != nil {
		t.Fatal(err)
	}
	var gout any
	if err := gob.NewDecoder(&buf).Decode(&gout); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, gout) {
		t.Fatalf("codecs disagree on empty slice:\nbinary: %#v\n   gob: %#v", out, gout)
	}
}

func TestBinaryPrototypesContainsRegistered(t *testing.T) {
	found := false
	for _, p := range BinaryPrototypes() {
		if _, ok := p.(binPayload); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("BinaryPrototypes missing binPayload")
	}
}

func TestRegisterBinaryCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate kind registration did not panic")
		}
	}()
	RegisterBinary(kindBinPayload, struct{ Y int }{}, nil, nil)
}
