// Package wire centralizes encoding/gob type registration for the protocol
// payloads that cross internal/nettransport's TCP frames. Both the overlay
// and the SPRITE core register their message types here instead of calling
// gob.Register directly, so registration is idempotent by construction: a
// type mentioned from several init paths (or from tests that reload
// packages) is registered exactly once, and accidental double registration
// can never panic.
package wire

import (
	"encoding/gob"
	"reflect"
	"sync"
)

var (
	mu         sync.Mutex
	registered = make(map[reflect.Type]bool)
)

// Register registers each value's concrete type with encoding/gob exactly
// once. Repeat calls with the same types are no-ops. Safe for concurrent use.
func Register(values ...any) {
	mu.Lock()
	defer mu.Unlock()
	for _, v := range values {
		registerGobLocked(v)
	}
}

// registerGobLocked is Register's single-value body; mu must be held.
func registerGobLocked(v any) {
	t := reflect.TypeOf(v)
	if registered[t] {
		return
	}
	gob.Register(v)
	registered[t] = true
}

// Registered reports how many distinct types have been registered, for tests.
func Registered() int {
	mu.Lock()
	defer mu.Unlock()
	return len(registered)
}
