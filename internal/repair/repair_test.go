package repair

import (
	"fmt"
	"reflect"
	"testing"
)

func pop(n int) map[string]uint64 {
	out := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		out[fmt.Sprintf("term%03d", i)] = mix(uint64(i) + 1)
	}
	return out
}

func TestFoldEqualPopulations(t *testing.T) {
	a, b := pop(50), pop(50)
	sa, sb := Fold(a), Fold(b)
	if sa != sb {
		t.Fatalf("identical populations fold to different summaries:\n%+v\n%+v", sa, sb)
	}
	if d := Divergent(sa, sb); d != nil {
		t.Fatalf("Divergent on equal summaries = %v, want nil", d)
	}
}

func TestFoldLocalizesDivergence(t *testing.T) {
	a, b := pop(60), pop(60)
	victim := "term007"
	b[victim] ^= 1 // one term's list diverged
	sa, sb := Fold(a), Fold(b)
	if sa.Root == sb.Root {
		t.Fatal("divergent populations share a root")
	}
	div := Divergent(sa, sb)
	if len(div) != 1 || div[0] != BucketOf(victim) {
		t.Fatalf("Divergent = %v, want exactly bucket %d", div, BucketOf(victim))
	}
}

func TestFoldMissingTerm(t *testing.T) {
	a := pop(40)
	b := pop(40)
	delete(b, "term011")
	div := Divergent(Fold(a), Fold(b))
	if len(div) != 1 || div[0] != BucketOf("term011") {
		t.Fatalf("missing term not localized: %v", div)
	}
}

func TestBucketsSpread(t *testing.T) {
	// The spreading hash must not pile a realistic term set into one bucket.
	seen := make(map[int]int)
	for t := range pop(200) {
		seen[BucketOf(t)]++
	}
	if len(seen) < Buckets/2 {
		t.Fatalf("200 terms landed in only %d of %d buckets", len(seen), Buckets)
	}
	for b, n := range seen {
		if n > 200/2 {
			t.Fatalf("bucket %d holds %d of 200 terms", b, n)
		}
	}
}

func TestInBuckets(t *testing.T) {
	p := pop(30)
	buckets := []int{BucketOf("term000"), BucketOf("term001")}
	got := InBuckets(p, buckets)
	for term := range got {
		ok := false
		for _, b := range buckets {
			if BucketOf(term) == b {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("term %q in result but not in buckets %v", term, buckets)
		}
	}
	if _, ok := got["term000"]; !ok {
		t.Fatal("term000 filtered out of its own bucket")
	}
}

func TestDiffTerms(t *testing.T) {
	auth := map[string]uint64{"a": 1, "b": 2, "c": 3}
	local := map[string]uint64{"b": 2, "c": 9, "d": 4}
	need, drop := DiffTerms(auth, local)
	if want := []string{"a", "c"}; !reflect.DeepEqual(need, want) {
		t.Errorf("need = %v, want %v", need, want)
	}
	if want := []string{"d"}; !reflect.DeepEqual(drop, want) {
		t.Errorf("drop = %v, want %v", drop, want)
	}
	need, drop = DiffTerms(auth, map[string]uint64{"a": 1, "b": 2, "c": 3})
	if need != nil || drop != nil {
		t.Errorf("synchronized diff = need %v drop %v, want empty", need, drop)
	}
}

func TestFoldOrderInsensitive(t *testing.T) {
	// Fold iterates a map, so two folds of one population already exercise
	// random orders; make the property explicit across many iterations.
	p := pop(25)
	want := Fold(p)
	for i := 0; i < 10; i++ {
		if got := Fold(p); got != want {
			t.Fatalf("fold %d differs: %+v vs %+v", i, got, want)
		}
	}
}
