// Package repair is the peer-driven data-placement subsystem's logic layer:
// compact Merkle-style summaries of an arc's term population and the diff
// computations behind join/leave handoff and periodic anti-entropy.
//
// Placement maintenance used to be owner-driven: entries migrated to a new
// key owner only when the sharing peer's periodic refresh happened to
// re-publish them. The repair subsystem inverts that: the peers holding the
// data keep it placed. Indexing peers hand entries to a joiner the moment
// stabilization adopts it as predecessor, a gracefully leaving peer pushes
// its entries to its successor before unregistering, and primary holders
// periodically exchange per-arc digests with their K replica holders,
// reconciling only divergent subtrees. This package holds the transport-free
// pieces — digest folding, divergence detection, term-set diffing — so they
// are testable in isolation; internal/core drives the message protocol.
package repair

import "sort"

// Buckets is the fan-out of an arc summary's single interior level. Terms
// are spread over the buckets by an ID-independent hash of the term string
// (not the term's ring position — an arc is a contiguous ID range, so
// position-based bucketing would pile every term of a narrow arc into one
// bucket and localize nothing).
const Buckets = 16

// Metric names exported by the subsystem. The core layer registers them on
// its telemetry registry; they appear in snapshots like every other counter.
const (
	// MetricHandoffs counts index entries moved by join/leave handoff.
	MetricHandoffs = "sprite.repair.handoffs"
	// MetricReconciles counts anti-entropy digest exchanges performed.
	MetricReconciles = "sprite.repair.reconciles"
	// MetricDivergentTerms counts terms an exchange found divergent (pushed
	// or dropped on the replica side).
	MetricDivergentTerms = "sprite.repair.divergent_terms"
)

// Summary is a two-level Merkle digest of a term→digest population: Root
// commits to all of it, Buckets localize a divergence to 1/Buckets of the
// terms. Equal Roots mean (up to hash collision) identical populations, so
// the synchronized case costs one exchange of 8 bytes of payload.
type Summary struct {
	Root    uint64
	Buckets [Buckets]uint64
}

// BucketOf returns the summary bucket a term folds into. The FNV hash is
// finalized through mix first: FNV-1a's high bits barely change across
// short, similar strings, while the finalizer's avalanche spreads them.
func BucketOf(term string) int {
	return int(mix(strHash(term)) & (Buckets - 1))
}

// Fold builds the summary of a term→digest population (index.ArcDigests
// output). Each term contributes mix(termHash, digest) to its bucket by
// XOR, so folding is order-insensitive; Root re-hashes the bucket vector.
func Fold(digests map[string]uint64) Summary {
	var s Summary
	for t, d := range digests {
		s.Buckets[BucketOf(t)] ^= mix(strHash(t) ^ mix(d))
	}
	for i, b := range s.Buckets {
		s.Root = mix(s.Root ^ mix(b+uint64(i)))
	}
	return s
}

// Divergent returns the buckets where the two summaries disagree, nil when
// the roots match. The slice is ordered, so protocol messages built from it
// are deterministic.
func Divergent(a, b Summary) []int {
	if a.Root == b.Root {
		return nil
	}
	var out []int
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			out = append(out, i)
		}
	}
	return out
}

// InBuckets filters a term→digest map down to the terms falling in the
// given buckets.
func InBuckets(digests map[string]uint64, buckets []int) map[string]uint64 {
	want := make(map[int]bool, len(buckets))
	for _, b := range buckets {
		want[b] = true
	}
	out := make(map[string]uint64)
	for t, d := range digests {
		if want[BucketOf(t)] {
			out[t] = d
		}
	}
	return out
}

// DiffTerms compares an authoritative term→digest map against a local copy
// (both already restricted to the same arc and buckets) from the copy
// holder's perspective: need lists the terms whose authoritative list must
// be fetched (missing locally or digest mismatch), drop lists local terms
// the authority no longer has. Both are sorted.
func DiffTerms(authoritative, local map[string]uint64) (need, drop []string) {
	for t, d := range authoritative {
		if local[t] != d {
			need = append(need, t)
		}
	}
	for t := range local {
		if _, ok := authoritative[t]; !ok {
			drop = append(drop, t)
		}
	}
	sort.Strings(need)
	sort.Strings(drop)
	return need, drop
}

// strHash is FNV-1a over the term string, the bucket-spreading hash.
func strHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix is the splitmix64 finalizer: a cheap bijective scrambler that keeps
// XOR-folded contributions from canceling structurally.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
