package ir

import (
	"github.com/spritedht/sprite/internal/sketch"
)

// SketchRanker is the similarity-query counterpart of MergeTopK: a streaming
// top-k selector over candidate documents scored by sketch cosine against a
// query sketch. The query path feeds it straight off postings cursors — doc
// IDs as raw bytes, sketches aliasing immutable block data — and only a
// candidate that actually enters the top k ever materializes a string.
//
// Candidates deduplicate first-wins by doc ID: a document reached through
// several routing terms is scored once, on the sketch its first appearance
// carried. Because (score, doc) is a strict total order, the selected set and
// its order are insensitive to offer order among distinct documents; the
// caller makes the first-appearance choice deterministic by folding terms in
// sorted order (the same discipline the TF·IDF accumulators follow).
type SketchRanker struct {
	query []byte
	seen  map[string]struct{}
	top   topkHeap
}

// NewSketchRanker returns a ranker selecting the k candidates most cosine-
// similar to the serialized query sketch. A k <= 0 ranker discards every
// offer.
func NewSketchRanker(query []byte, k int) *SketchRanker {
	if k < 0 {
		k = 0
	}
	return &SketchRanker{
		query: query,
		seen:  make(map[string]struct{}),
		top:   topkHeap{h: make(RankedList, 0, k), k: k},
	}
}

// Offer considers one candidate document. doc may alias a cursor scratch
// buffer — it is only copied if the candidate is kept. A missing or malformed
// sketch scores 0 (sketch.CosineBytes's convention), so such documents rank
// behind every positively-correlated candidate instead of failing the query.
func (r *SketchRanker) Offer(doc, sk []byte) {
	if r.top.k <= 0 {
		return
	}
	if _, dup := r.seen[string(doc)]; dup {
		return
	}
	r.seen[string(doc)] = struct{}{}
	r.top.offerKey(doc, sketch.CosineBytes(r.query, sk))
}

// Candidates returns the number of distinct documents offered so far.
func (r *SketchRanker) Candidates() int { return len(r.seen) }

// Ranked finalizes and returns the selection in rank order (descending
// cosine, ties ascending by DocID). Call it once, after the last Offer.
func (r *SketchRanker) Ranked() RankedList { return r.top.ranked() }
