package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spritedht/sprite/internal/index"
)

// benchFixture builds one term's postings in both representations: the
// decoded slice the plain index serves and the block-compressed form. Doc
// IDs are the synthetic corpus shape (docNNNNN ascending) so front-coding
// behaves as it does in the postings benchmark.
func benchFixture(n int) ([]index.Posting, *index.Inverted) {
	rng := rand.New(rand.NewSource(7))
	ps := make([]index.Posting, 0, n)
	for i := 0; i < n; i++ {
		ps = append(ps, index.Posting{
			Doc:    index.DocID(fmt.Sprintf("doc%06d", i)),
			Owner:  fmt.Sprintf("peer%02d", rng.Intn(64)),
			Freq:   1 + rng.Intn(9),
			DocLen: 60 + rng.Intn(180),
		})
	}
	ix := index.NewInverted()
	for _, p := range ps {
		ix.Add("t", p)
	}
	return ps, ix
}

// BenchmarkAccumulateSlice is the plain arm's read path: iterate a decoded
// []Posting and fold Weight per posting.
func BenchmarkAccumulateSlice(b *testing.B) {
	ps, _ := benchFixture(50000)
	acc := NewAccumulatorSized(len(ps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, p := range ps {
			acc.Accumulate(p.Doc, 0.37*Weight(p.NormFreq(), LargeN, len(ps)), p.DocLen)
		}
	}
}

// BenchmarkAccumulateEncoded is the streaming accumulator path: stream the
// block cursor through the zero-string accumulator.
func BenchmarkAccumulateEncoded(b *testing.B) {
	ps, ix := benchFixture(50000)
	acc := NewAccumulatorSized(len(ps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		acc.AccumulateEncoded(ix.Cursor("t"), 0.37, LargeN, len(ps))
	}
}

// BenchmarkMergeTopK is the compressed arm's query path: merge the term
// cursor straight into a bounded top-k heap, no accumulator at all.
func BenchmarkMergeTopK(b *testing.B) {
	ps, ix := benchFixture(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeTopK([]MergeTerm{{Cursor: ix.Cursor("t"), WQ: 0.37, N: LargeN, DF: len(ps)}}, 10)
	}
}
