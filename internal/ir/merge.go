package ir

import (
	"bytes"
	"math"

	"github.com/spritedht/sprite/internal/index"
)

// This file is the fully streaming end of the scoring pipeline: a k-way
// merge over the query terms' compressed cursors. Every cursor yields its
// postings in ascending doc-ID order, so all of a document's contributions
// are adjacent in the merged stream — the document can be scored completely
// and offered to a bounded top-k heap the moment the merge moves past it.
// Unlike the accumulator paths, no per-document map entry, interned key, or
// materialized string is ever built for documents that do not reach the
// top k; a query's working state is the cursors plus k hits.
//
// The rankings are bit-identical to accumulating the same streams term by
// term: each document's dot product sums its per-term contributions in query
// term order (exactly the additions Accumulate would perform, in the same
// order), and (score, doc) is a strict total order, so top-k selection is
// insensitive to the order documents are offered in.

// MergeTerm is one query term's input to MergeTopK: a cursor over the
// term's postings plus the scoring inputs AccumulateEncoded would take.
type MergeTerm struct {
	Cursor *index.Cursor
	WQ     float64 // query-side weight of the term
	N      int     // collection size for the IDF factor
	DF     int     // term document frequency
}

// mergeState is one term's position in the merge: the head posting decoded
// off its cursor. doc aliases the cursor's scratch buffer and is valid until
// the cursor's next advance.
type mergeState struct {
	cur          *index.Cursor
	wq, idf      float64
	doc          []byte
	freq, docLen int
	ok           bool
}

func (s *mergeState) advance() {
	s.doc, s.freq, s.docLen, s.ok = s.cur.NextBytes()
}

// MergeTopK scores the documents covered by terms and returns the k best
// hits in rank order — the same list RankedTop(k) produces after
// AccumulateEncoded runs per term, selected without building the
// accumulator. Cursor decode errors end that term's stream early, exactly
// as they end AccumulateEncoded.
func MergeTopK(terms []MergeTerm, k int) RankedList {
	if k <= 0 {
		return RankedList{}
	}
	states := make([]mergeState, len(terms))
	active := 0
	for i, t := range terms {
		s := &states[i]
		s.cur, s.wq = t.Cursor, t.WQ
		if t.DF > 0 && t.N > 0 {
			s.idf = math.Log(float64(t.N) / float64(t.DF))
		}
		s.advance()
		if s.ok {
			active++
		}
	}
	top := topkHeap{h: make(RankedList, 0, k), k: k}
	var cur []byte // the doc being scored; copied out of cursor scratch
	for active > 0 {
		var minDoc []byte
		for i := range states {
			if states[i].ok && (minDoc == nil || bytes.Compare(states[i].doc, minDoc) < 0) {
				minDoc = states[i].doc
			}
		}
		cur = append(cur[:0], minDoc...)
		// Fold the document's contributions in term order — the addition
		// order the sequential per-term accumulator would use — advancing
		// each contributing cursor past it.
		first := true
		var (
			dot    float64
			docLen int
		)
		for i := range states {
			s := &states[i]
			if !s.ok || !bytes.Equal(s.doc, cur) {
				continue
			}
			nf := 0.0
			if s.docLen != 0 {
				nf = float64(s.freq) / float64(s.docLen)
			}
			c := s.wq * (nf * s.idf)
			if first {
				dot, first = c, false
			} else {
				dot += c
			}
			docLen = s.docLen
			s.advance()
			if !s.ok {
				active--
			}
		}
		top.offerKey(cur, Similarity(dot, docLen))
	}
	return top.ranked()
}

// offerKey is offer for a candidate whose doc ID is still raw bytes: the
// string is materialized only when the candidate is actually kept, so the
// merge allocates nothing for the documents a query discards. The
// keep-or-skip decision mirrors rankAfter exactly, including its treatment
// of equal and unordered (NaN) scores.
func (t *topkHeap) offerKey(doc []byte, score float64) {
	if len(t.h) < t.k {
		t.offer(Hit{Doc: index.DocID(doc), Score: score})
		return
	}
	w := t.h[0]
	better := false
	if w.Score != score {
		better = w.Score < score
	} else {
		better = stringAfterBytes(w.Doc, doc)
	}
	if !better {
		return
	}
	t.h[0] = Hit{Doc: index.DocID(doc), Score: score}
	t.siftDown(0)
}

// stringAfterBytes reports whether s sorts lexicographically after b — the
// doc tie-break of rankAfter, evaluated without converting b to a string.
func stringAfterBytes(s index.DocID, b []byte) bool {
	n := min(len(s), len(b))
	for i := 0; i < n; i++ {
		if s[i] != b[i] {
			return s[i] > b[i]
		}
	}
	return len(s) > len(b)
}
