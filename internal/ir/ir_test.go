package ir

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spritedht/sprite/internal/index"
)

func TestWeight(t *testing.T) {
	got := Weight(0.1, 1000, 10)
	want := 0.1 * math.Log(100)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Weight = %v, want %v", got, want)
	}
}

func TestWeightDegenerate(t *testing.T) {
	if Weight(0.5, 1000, 0) != 0 {
		t.Error("zero df must yield zero weight")
	}
	if Weight(0.5, 0, 3) != 0 {
		t.Error("zero N must yield zero weight")
	}
}

func TestWeightMonotoneInIDF(t *testing.T) {
	// Rarer terms weigh more.
	if Weight(0.1, 1000, 5) <= Weight(0.1, 1000, 50) {
		t.Fatal("weight not decreasing in document frequency")
	}
}

func TestQueryWeight(t *testing.T) {
	got := QueryWeight(1, 4, LargeN, 100)
	want := Weight(0.25, LargeN, 100)
	if got != want {
		t.Fatalf("QueryWeight = %v, want %v", got, want)
	}
	if QueryWeight(1, 0, LargeN, 100) != 0 {
		t.Fatal("zero-length query must yield 0")
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity(2.0, 4); got != 1.0 {
		t.Fatalf("Similarity(2, 4) = %v, want 1 (2/sqrt(4))", got)
	}
	if Similarity(1.0, 0) != 0 {
		t.Fatal("zero-length doc must yield 0")
	}
}

func TestRankedListSortDeterministic(t *testing.T) {
	rl := RankedList{
		{Doc: "b", Score: 1.0},
		{Doc: "a", Score: 1.0},
		{Doc: "c", Score: 2.0},
	}
	rl.Sort()
	wantOrder := []index.DocID{"c", "a", "b"}
	for i, w := range wantOrder {
		if rl[i].Doc != w {
			t.Fatalf("rank %d = %s, want %s (ties must break by DocID)", i, rl[i].Doc, w)
		}
	}
}

func TestRankedListTop(t *testing.T) {
	rl := RankedList{{Doc: "a", Score: 3}, {Doc: "b", Score: 2}, {Doc: "c", Score: 1}}
	if got := rl.Top(2); len(got) != 2 || got[1].Doc != "b" {
		t.Fatalf("Top(2) = %v", got)
	}
	if got := rl.Top(10); len(got) != 3 {
		t.Fatalf("Top beyond length = %v", got)
	}
}

func TestRankedListRankAndDocs(t *testing.T) {
	rl := RankedList{{Doc: "x", Score: 2}, {Doc: "y", Score: 1}}
	if rl.Rank("y") != 1 || rl.Rank("zz") != -1 {
		t.Fatal("Rank misbehaved")
	}
	docs := rl.Docs()
	if len(docs) != 2 || docs[0] != "x" {
		t.Fatalf("Docs = %v", docs)
	}
}

func TestAccumulator(t *testing.T) {
	acc := NewAccumulator()
	acc.Accumulate("d1", 0.5, 25) // sim = 0.5/5 = 0.1
	acc.Accumulate("d1", 0.5, 25) // sim = 1.0/5 = 0.2
	acc.Accumulate("d2", 0.9, 9)  // sim = 0.9/3 = 0.3
	rl := acc.Ranked()
	if rl[0].Doc != "d2" {
		t.Fatalf("rank 1 = %v, want d2", rl[0])
	}
	if math.Abs(rl[0].Score-0.3) > 1e-12 || math.Abs(rl[1].Score-0.2) > 1e-12 {
		t.Fatalf("scores = %v", rl)
	}
}

func TestAccumulatorSumsInArrivalOrder(t *testing.T) {
	// Property: the accumulator's per-document score is bit-identical (==,
	// not within epsilon) to a left-to-right fold of that document's
	// contributions in arrival order. Float addition is not associative, so
	// this is the contract that makes parallel query execution — which
	// collects per-term contribution slices and folds them in term order —
	// reproduce sequential rankings exactly.
	rng := rand.New(rand.NewSource(42))
	type posting struct {
		doc     index.DocID
		contrib float64
		docLen  int
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		stream := make([]posting, n)
		for i := range stream {
			stream[i] = posting{
				doc: index.DocID(fmt.Sprintf("d%d", rng.Intn(12))),
				// Irregular magnitudes make float addition order-sensitive,
				// so any ordering bug shows up as a score mismatch.
				contrib: rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3)),
				docLen:  1 + rng.Intn(500),
			}
		}

		acc := NewAccumulator()
		dot := map[index.DocID]float64{}
		dlen := map[index.DocID]int{}
		for _, p := range stream {
			acc.Accumulate(p.doc, p.contrib, p.docLen)
			dot[p.doc] += p.contrib
			dlen[p.doc] = p.docLen
		}

		got := acc.Ranked()
		if len(got) != len(dot) {
			t.Fatalf("trial %d: %d docs ranked, want %d", trial, len(got), len(dot))
		}
		for i, h := range got {
			want := Similarity(dot[h.Doc], dlen[h.Doc])
			if h.Score != want {
				t.Fatalf("trial %d rank %d doc %s: score %v, want %v (must be bit-identical)",
					trial, i, h.Doc, h.Score, want)
			}
		}
	}
}

func TestAccumulatorResetReuse(t *testing.T) {
	acc := NewAccumulator()
	acc.Accumulate("stale", 9.0, 4)
	acc.Reset()
	if acc.Len() != 0 {
		t.Fatalf("Len after Reset = %d", acc.Len())
	}
	acc.Accumulate("d", 1.0, 4)
	if rl := acc.Ranked(); len(rl) != 1 || rl[0].Doc != "d" || rl[0].Score != 0.5 {
		t.Fatalf("reused accumulator leaked state: %v", rl)
	}
}

func TestRankedTopMatchesFullSort(t *testing.T) {
	// Property: RankedTop(k) must equal Ranked().Top(k) exactly for every k —
	// (score, doc) is a strict total order, so there is only one correct
	// answer and the bounded-heap selection must find it.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		acc := NewAccumulator()
		docs := 1 + rng.Intn(40)
		for i := 0; i < docs; i++ {
			// A coarse score grid forces plenty of exact ties, exercising the
			// DocID tie-break inside the heap comparisons.
			acc.Accumulate(index.DocID(fmt.Sprintf("d%02d", i)),
				float64(rng.Intn(5)), 4)
		}
		for _, k := range []int{0, 1, 2, docs / 2, docs - 1, docs, docs + 3} {
			want := acc.Ranked().Top(k)
			got := acc.RankedTop(k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d rank %d: %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEvaluate(t *testing.T) {
	relevant := map[index.DocID]bool{"a": true, "b": true, "c": true, "d": true}
	returned := []index.DocID{"a", "x", "b", "y"}
	m := Evaluate(returned, relevant)
	if m.Precision != 0.5 {
		t.Fatalf("precision = %v, want 0.5", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Fatalf("recall = %v, want 0.5 (2 of 4 relevant found)", m.Recall)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	if m := Evaluate(nil, map[index.DocID]bool{"a": true}); m.Precision != 0 || m.Recall != 0 {
		t.Fatalf("empty returned list: %+v", m)
	}
	if m := Evaluate([]index.DocID{"a"}, map[index.DocID]bool{}); m.Recall != 0 {
		t.Fatalf("empty relevant set must give zero recall, got %+v", m)
	}
}

func TestMeanMetrics(t *testing.T) {
	ms := []Metrics{{Precision: 1, Recall: 0.5}, {Precision: 0.5, Recall: 1}}
	mean := MeanMetrics(ms)
	if mean.Precision != 0.75 || mean.Recall != 0.75 {
		t.Fatalf("mean = %+v", mean)
	}
	if zero := MeanMetrics(nil); zero != (Metrics{}) {
		t.Fatalf("MeanMetrics(nil) = %+v", zero)
	}
}

func TestRatio(t *testing.T) {
	sys := Metrics{Precision: 0.45, Recall: 0.3}
	base := Metrics{Precision: 0.5, Recall: 0.6}
	r := Ratio(sys, base)
	if math.Abs(r.Precision-0.9) > 1e-12 || math.Abs(r.Recall-0.5) > 1e-12 {
		t.Fatalf("ratio = %+v", r)
	}
	if z := Ratio(sys, Metrics{}); z != (Metrics{}) {
		t.Fatalf("ratio with zero baseline = %+v, want zero", z)
	}
}

// Property: precision and recall always lie in [0, 1].
func TestEvaluateBoundsProperty(t *testing.T) {
	f := func(retSeed, relSeed uint8) bool {
		var returned []index.DocID
		for i := 0; i < int(retSeed)%10; i++ {
			returned = append(returned, index.DocID(rune('a'+i%5)))
		}
		relevant := map[index.DocID]bool{}
		for i := 0; i < int(relSeed)%7; i++ {
			relevant[index.DocID(rune('a'+i%5))] = true
		}
		m := Evaluate(returned, relevant)
		return m.Precision >= 0 && m.Precision <= 1 && m.Recall >= 0 && m.Recall <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: similarity is monotone in the dot product for fixed doc length.
func TestSimilarityMonotoneProperty(t *testing.T) {
	f := func(a, b float64, dl uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || dl == 0 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Similarity(lo, int(dl)) <= Similarity(hi, int(dl))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestF1(t *testing.T) {
	m := Metrics{Precision: 0.5, Recall: 0.5}
	if got := m.F1(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("F1 = %v, want 0.5", got)
	}
	if (Metrics{}).F1() != 0 {
		t.Fatal("F1 of zero metrics must be 0")
	}
	// F1 is at most the arithmetic mean.
	m = Metrics{Precision: 0.9, Recall: 0.1}
	if m.F1() > (m.Precision+m.Recall)/2 {
		t.Fatal("F1 above arithmetic mean")
	}
}

func TestAveragePrecision(t *testing.T) {
	rel := map[index.DocID]bool{"a": true, "b": true}
	// a at rank 1 (P=1), b at rank 3 (P=2/3) → AP = (1 + 2/3)/2 = 5/6.
	got := AveragePrecision([]index.DocID{"a", "x", "b"}, rel)
	if math.Abs(got-5.0/6.0) > 1e-12 {
		t.Fatalf("AP = %v, want 5/6", got)
	}
	// Missing relevant docs penalize via the |relevant| denominator.
	got = AveragePrecision([]index.DocID{"a"}, rel)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("AP with one found = %v, want 0.5", got)
	}
	if AveragePrecision([]index.DocID{"a"}, nil) != 0 {
		t.Fatal("AP with empty relevant set must be 0")
	}
	// Duplicates in the returned list must not double-count.
	got = AveragePrecision([]index.DocID{"a", "a", "b"}, rel)
	if math.Abs(got-(1.0+2.0/3.0)/2) > 1e-12 {
		t.Fatalf("AP with dup = %v", got)
	}
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	rel := map[index.DocID]bool{"a": true, "b": true, "c": true}
	if got := AveragePrecision([]index.DocID{"a", "b", "c"}, rel); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("perfect AP = %v, want 1", got)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	if got := MeanAveragePrecision([]float64{1, 0, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MAP = %v, want 0.5", got)
	}
	if MeanAveragePrecision(nil) != 0 {
		t.Fatal("MAP of nothing must be 0")
	}
}
