package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/sketch"
)

// TestSketchRankerMatchesSort: the streaming selection must equal sorting
// every candidate by (descending cosine, ascending doc), whatever order the
// candidates arrive in and however often they repeat.
func TestSketchRankerMatchesSort(t *testing.T) {
	s, err := sketch.New(sketch.Config{Enabled: true, Dims: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	doc := func(i int) map[string]int {
		tf := map[string]int{}
		for j := 0; j < 15; j++ {
			tf[fmt.Sprintf("t%02d", (i*7+j*3)%40)] = j%5 + 1
		}
		return tf
	}
	query := s.SketchBytes(doc(1000))

	type cand struct {
		id string
		sk []byte
	}
	var cands []cand
	for i := 0; i < 120; i++ {
		cands = append(cands, cand{id: fmt.Sprintf("doc%03d", i), sk: s.SketchBytes(doc(i))})
	}
	// Every few candidates lack a sketch — they must rank by score 0.
	for i := 0; i < len(cands); i += 9 {
		cands[i].sk = nil
	}

	want := make(RankedList, 0, len(cands))
	for _, c := range cands {
		want = append(want, Hit{Doc: index.DocID(c.id), Score: sketch.CosineBytes(query, c.sk)})
	}
	want.Sort()

	for _, k := range []int{0, 1, 10, len(cands), len(cands) + 5} {
		r := NewSketchRanker(query, k)
		order := rng.Perm(len(cands))
		for _, i := range order {
			r.Offer([]byte(cands[i].id), cands[i].sk)
			// Duplicate offers must not double-count.
			if i%3 == 0 {
				r.Offer([]byte(cands[i].id), cands[i].sk)
			}
		}
		if got := r.Candidates(); got != len(cands) && k > 0 {
			t.Fatalf("k=%d: Candidates = %d, want %d", k, got, len(cands))
		}
		got := r.Ranked()
		if !reflect.DeepEqual(got, want.Top(k)) {
			t.Fatalf("k=%d: ranked list diverges from sorted reference\n got %v\nwant %v", k, got, want.Top(k))
		}
	}
}

// TestSketchRankerFirstWins: a document offered twice with different sketches
// keeps its first score.
func TestSketchRankerFirstWins(t *testing.T) {
	s, _ := sketch.New(sketch.Config{Enabled: true, Dims: 32})
	query := s.SketchBytes(map[string]int{"a": 2, "b": 1})
	first := s.SketchBytes(map[string]int{"a": 2, "b": 1}) // cosine 1
	second := s.SketchBytes(map[string]int{"z": 9})

	r := NewSketchRanker(query, 5)
	r.Offer([]byte("d1"), first)
	r.Offer([]byte("d1"), second)
	got := r.Ranked()
	if len(got) != 1 || got[0].Score != 1 {
		t.Fatalf("first-wins violated: %v", got)
	}
	if r.Candidates() != 1 {
		t.Fatalf("Candidates = %d, want 1", r.Candidates())
	}
}

// TestSketchRankerScratchAliasing: offering doc IDs through a reused scratch
// buffer (the cursor contract) must not corrupt kept hits.
func TestSketchRankerScratchAliasing(t *testing.T) {
	s, _ := sketch.New(sketch.Config{Enabled: true, Dims: 16})
	query := s.SketchBytes(map[string]int{"q": 1})
	r := NewSketchRanker(query, 3)
	scratch := make([]byte, 0, 16)
	for i := 0; i < 10; i++ {
		scratch = append(scratch[:0], fmt.Sprintf("doc%d", i)...)
		r.Offer(scratch, s.SketchBytes(map[string]int{"q": 1, "x": i}))
	}
	for _, h := range r.Ranked() {
		if len(h.Doc) < 4 || h.Doc[:3] != "doc" {
			t.Fatalf("kept hit holds corrupted doc %q", h.Doc)
		}
	}
}
