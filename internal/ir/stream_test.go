package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/index"
)

// randomPostings builds n postings over a shared doc-ID space, pre-sorted in
// the index's served (ascending doc) order.
func randomPostings(rng *rand.Rand, n int) []index.Posting {
	seen := make(map[index.DocID]bool, n)
	out := make([]index.Posting, 0, n)
	for len(out) < n {
		id := index.DocID(fmt.Sprintf("doc%05d", rng.Intn(4*n)))
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, index.Posting{
			Doc:    id,
			Owner:  fmt.Sprintf("peer%02d", rng.Intn(8)),
			Freq:   1 + rng.Intn(9),
			DocLen: 50 + rng.Intn(200),
		})
	}
	// Insert into an index to get served order without hand-sorting.
	ix := index.NewInverted()
	for _, p := range out {
		ix.Add("t", p)
	}
	return ix.PostingsSlice("t")
}

// All four accumulation paths — the slice loop, AccumulateStream,
// AccumulateEncoded over the compressed cursor, and CollectStream folded via
// AccumulateAll — must produce bit-identical rankings: same docs, same float
// bits, same order.
func TestStreamPathsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := randomPostings(rng, 500)
	ix := index.NewInverted()
	for _, p := range ps {
		ix.Add("t", p)
	}
	const (
		wq = 0.37
		n  = LargeN
		df = 500
	)

	ref := NewAccumulator()
	for _, p := range ps {
		ref.Accumulate(p.Doc, wq*Weight(p.NormFreq(), n, df), p.DocLen)
	}
	want := ref.Ranked()

	stream := NewAccumulator()
	stream.AccumulateStream(NewSlicePostings(ps), wq, n, df)
	if got := stream.Ranked(); !reflect.DeepEqual(got, want) {
		t.Fatal("AccumulateStream diverges from the slice loop")
	}

	enc := NewAccumulator()
	enc.AccumulateEncoded(ix.Cursor("t"), wq, n, df)
	if got := enc.Ranked(); !reflect.DeepEqual(got, want) {
		t.Fatal("AccumulateEncoded diverges from the slice loop")
	}

	part := CollectStream(ix.Cursor("t"), wq, n, df, make([]Contribution, 0, len(ps)))
	coll := NewAccumulator()
	coll.AccumulateAll(part)
	if got := coll.Ranked(); !reflect.DeepEqual(got, want) {
		t.Fatal("CollectStream+AccumulateAll diverges from the slice loop")
	}
}

// MergeTopK must return exactly RankedTop(k) over the same per-term
// streams: same docs, same float bits, same order — for every k, including
// k beyond the candidate count, over terms with overlapping doc sets and
// differing df/weights.
func TestMergeTopKMatchesAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := index.NewInverted()
	terms := []string{"alpha", "beta", "gamma"}
	for _, term := range terms {
		for _, p := range randomPostings(rng, 200+rng.Intn(200)) {
			ix.Add(term, p)
		}
	}
	const n = LargeN
	for _, k := range []int{1, 3, 10, 100, 5000} {
		acc := NewAccumulator()
		mts := make([]MergeTerm, 0, len(terms))
		for i, term := range terms {
			df := ix.DocFreq(term)
			wq := 0.2 + 0.1*float64(i)
			acc.AccumulateEncoded(ix.Cursor(term), wq, n, df)
			mts = append(mts, MergeTerm{Cursor: ix.Cursor(term), WQ: wq, N: n, DF: df})
		}
		want := acc.RankedTop(k)
		if got := MergeTopK(mts, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: MergeTopK diverges from RankedTop", k)
		}
	}
	if got := MergeTopK(nil, 10); len(got) != 0 {
		t.Fatalf("MergeTopK(nil) = %v, want empty", got)
	}
}

// AccumulateKey must behave exactly like Accumulate: first sight inserts,
// repeats fold into the same entry, and mutating the caller's byte buffer
// afterwards must not corrupt stored doc IDs (the bytes are copied on
// insert).
func TestAccumulateKeyAliasSafe(t *testing.T) {
	a := NewAccumulator()
	buf := []byte("docA")
	a.AccumulateKey(buf, 1.5, 100)
	buf[3] = 'B' // simulates the cursor reusing its scratch buffer
	a.AccumulateKey(buf, 2.0, 80)
	buf[3] = 'A'
	a.AccumulateKey(buf, 0.25, 100)

	b := NewAccumulator()
	b.Accumulate("docA", 1.5, 100)
	b.Accumulate("docB", 2.0, 80)
	b.Accumulate("docA", 0.25, 100)
	if got, want := a.Ranked(), b.Ranked(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AccumulateKey ranking %v, want %v", got, want)
	}
}
