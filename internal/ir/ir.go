// Package ir implements the information-retrieval mathematics of the SPRITE
// paper (§4 and §6): TF·IDF term weighting, the simplified vector-space
// similarity of Lee, Chuang and Seamons ("Document ranking and the
// vector-space model", IEEE Software 1997 — the paper's formula (2)), ranked
// lists, and the precision/recall evaluation metrics.
package ir

import (
	"math"
	"slices"

	"github.com/spritedht/sprite/internal/index"
)

// LargeN is the surrogate corpus size used by distributed rankers. The paper
// observes (§4) that the true N cannot be known in a P2P network, but any
// sufficiently large constant preserves the ranking as long as every peer
// uses the same value.
const LargeN = 1 << 30

// Weight returns the TF·IDF weight w_ik = ntf · log(N/df) (§4). A zero df
// yields weight 0 (the term matches no document and contributes nothing).
func Weight(normFreq float64, n, df int) float64 {
	if df <= 0 || n <= 0 {
		return 0
	}
	return normFreq * math.Log(float64(n)/float64(df))
}

// QueryWeight returns the weight of a query term: the query's term frequency
// normalized by query length, times the same IDF factor. Queries are short,
// so tf is almost always 1/|Q|.
func QueryWeight(freqInQuery, queryLen, n, df int) float64 {
	if queryLen == 0 {
		return 0
	}
	return Weight(float64(freqInQuery)/float64(queryLen), n, df)
}

// Similarity computes the Lee et al. "second method" similarity (§4):
//
//	sim(Q, D) = Σ_j w_Q,j · w_D,j / sqrt(|D|)
//
// where |D| is the number of terms in the document. dot is the accumulated
// numerator; docLen is |D|.
func Similarity(dot float64, docLen int) float64 {
	if docLen <= 0 {
		return 0
	}
	return dot / math.Sqrt(float64(docLen))
}

// Hit is one entry of a ranked list.
type Hit struct {
	Doc   index.DocID
	Score float64
}

// RankedList is a descending-score list of hits. Ties break by DocID so
// rankings are deterministic across runs and platforms.
type RankedList []Hit

// Sort orders the list by descending score, then ascending DocID. The
// (score, doc) pair is a strict total order over distinct documents, so any
// correct sort produces the same permutation; slices.SortFunc just gets
// there with fewer comparator calls than sort.Slice.
func (rl RankedList) Sort() {
	slices.SortFunc(rl, func(a, b Hit) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.Doc < b.Doc:
			return -1
		case a.Doc > b.Doc:
			return 1
		}
		return 0
	})
}

// Top returns the first k hits (or fewer if the list is shorter). The list
// must already be sorted.
func (rl RankedList) Top(k int) RankedList {
	if k > len(rl) {
		k = len(rl)
	}
	return rl[:k]
}

// Docs returns just the document IDs, in rank order.
func (rl RankedList) Docs() []index.DocID {
	out := make([]index.DocID, len(rl))
	for i, h := range rl {
		out[i] = h.Doc
	}
	return out
}

// Rank returns the 0-based rank of doc, or -1 if absent.
func (rl RankedList) Rank(doc index.DocID) int {
	for i, h := range rl {
		if h.Doc == doc {
			return i
		}
	}
	return -1
}

// Accumulator consolidates per-term partial scores into document scores —
// the querying peer's job in SPRITE (§3: "index entries for the same
// document are consolidated"). Document lengths arrive with postings.
//
// Each document keeps a running sum updated in contribution arrival order.
// Float addition is not associative, so the order of the additions is the
// determinism contract: accumulating the same (term, posting) stream in the
// same order always yields the same bits. The parallel query engine upholds
// it by collecting per-term Contribution slices and folding them in term
// order, which performs exactly the additions the sequential per-term loop
// would have. Documents live in a flat arrival-order slice with a position
// map on the side — the hot path touches the map once per contribution and
// allocates nothing.
type Accumulator struct {
	pos     map[index.DocID]int32
	entries []accEntry
	// arena is the current intern chunk for doc IDs arriving as raw bytes
	// (AccumulateKey). Chunk bytes are append-once — written when a key is
	// interned and never touched again — so the string views handed to the
	// map and entries stay immutable. Reset drops the reference instead of
	// reusing the bytes, because ranked results returned to callers alias
	// them.
	arena []byte
}

// accEntry is one document's running state: the dot-product sum so far and
// the document length from its latest posting.
type accEntry struct {
	doc    index.DocID
	dot    float64
	docLen int
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return NewAccumulatorSized(0)
}

// NewAccumulatorSized returns an empty accumulator pre-sized for about n
// documents. Query paths that know the postings count up front use it to
// skip incremental map growth — at millions of queries per experiment the
// rehashing otherwise dominates the scoring profile.
func NewAccumulatorSized(n int) *Accumulator {
	if n < 0 {
		n = 0
	}
	return &Accumulator{
		pos:     make(map[index.DocID]int32, n),
		entries: make([]accEntry, 0, n),
	}
}

// Len reports how many documents hold contributions.
func (a *Accumulator) Len() int { return len(a.entries) }

// Reset empties the accumulator in place, retaining map and slice capacity.
// Query engines pool accumulators across searches: the bucket array and
// entry backing store are by far their largest allocation, and a reset
// keeps both.
func (a *Accumulator) Reset() {
	clear(a.pos)
	a.entries = a.entries[:0]
	a.arena = nil
}

// Accumulate adds the contribution of one (query term, posting) pair.
func (a *Accumulator) Accumulate(doc index.DocID, contribution float64, docLen int) {
	if i, ok := a.pos[doc]; ok {
		e := &a.entries[i]
		e.dot += contribution
		e.docLen = docLen
		return
	}
	a.pos[doc] = int32(len(a.entries))
	a.entries = append(a.entries, accEntry{doc: doc, dot: contribution, docLen: docLen})
}

// Contribution is one (document, partial score) entry produced while scoring
// a single term's postings list. Workers that score one term at a time can
// collect contributions in a slice — a postings list never repeats a document,
// so no map is needed until the per-term partials are folded together, and at
// millions of queries the per-term map allocations otherwise dominate the
// heap profile.
type Contribution struct {
	Doc    index.DocID
	Score  float64
	DocLen int
}

// AccumulateAll accumulates a contribution sequence in order. Folding
// per-term slices in term order performs exactly the Accumulate calls the
// sequential per-term loop would have, so rankings stay bit-identical.
func (a *Accumulator) AccumulateAll(cs []Contribution) {
	for _, c := range cs {
		a.Accumulate(c.Doc, c.Score, c.DocLen)
	}
}

// Ranked finalizes all documents into a sorted ranked list.
func (a *Accumulator) Ranked() RankedList {
	rl := make(RankedList, 0, len(a.entries))
	for i := range a.entries {
		e := &a.entries[i]
		rl = append(rl, Hit{Doc: e.doc, Score: Similarity(e.dot, e.docLen)})
	}
	rl.Sort()
	return rl
}

// rankAfter reports whether x belongs strictly after y in rank order —
// the same total order Sort uses (descending score, ascending DocID).
func rankAfter(x, y Hit) bool {
	if x.Score != y.Score {
		return x.Score < y.Score
	}
	return x.Doc > y.Doc
}

// RankedTop returns the k best hits in rank order. It is equivalent to
// Ranked().Top(k) — (score, doc) is a strict total order, so the top-k set
// and its order are unique — but selects through a bounded heap instead of
// sorting every candidate, which matters when a query touches hundreds of
// documents to return ten.
func (a *Accumulator) RankedTop(k int) RankedList {
	if k >= len(a.entries) {
		return a.Ranked()
	}
	if k <= 0 {
		return RankedList{}
	}
	t := topkHeap{h: make(RankedList, 0, k), k: k}
	for i := range a.entries {
		e := &a.entries[i]
		t.offer(Hit{Doc: e.doc, Score: Similarity(e.dot, e.docLen)})
	}
	return t.ranked()
}

// topkHeap selects the k best hits under rankAfter's total order. The heap
// keeps the worst hit at the root, so each candidate is compared against the
// worst hit currently kept; (score, doc) being a strict total order makes
// the selected set and its final order independent of offer order.
type topkHeap struct {
	h RankedList
	k int
}

func (t *topkHeap) siftDown(i int) {
	h := t.h
	for {
		w := i
		if l := 2*i + 1; l < len(h) && rankAfter(h[l], h[w]) {
			w = l
		}
		if r := 2*i + 2; r < len(h) && rankAfter(h[r], h[w]) {
			w = r
		}
		if w == i {
			return
		}
		h[i], h[w] = h[w], h[i]
		i = w
	}
}

// offer considers one candidate, keeping it only if fewer than k hits are
// held or it beats the worst kept hit.
func (t *topkHeap) offer(hit Hit) {
	if len(t.h) < t.k {
		t.h = append(t.h, hit)
		for c := len(t.h) - 1; c > 0; { // sift up
			p := (c - 1) / 2
			if !rankAfter(t.h[c], t.h[p]) {
				break
			}
			t.h[c], t.h[p] = t.h[p], t.h[c]
			c = p
		}
		return
	}
	if rankAfter(t.h[0], hit) { // better than the worst kept hit
		t.h[0] = hit
		t.siftDown(0)
	}
}

// ranked finalizes the selection in rank order.
func (t *topkHeap) ranked() RankedList {
	t.h.Sort()
	return t.h
}

// Metrics holds the two standard retrieval-quality measures (§6): with top K
// documents returned, K' of them relevant, and R relevant documents overall,
// precision = K'/K and recall = K'/R.
type Metrics struct {
	Precision float64
	Recall    float64
}

// Evaluate computes precision and recall of the returned list against the
// relevant set. An empty returned list or empty relevant set contributes
// zero to the respective metric rather than NaN. A relevant document counts
// once even if the returned list (pathologically) repeats it, keeping both
// metrics within [0, 1].
func Evaluate(returned []index.DocID, relevant map[index.DocID]bool) Metrics {
	if len(returned) == 0 {
		return Metrics{}
	}
	seen := make(map[index.DocID]bool, len(returned))
	hits := 0
	for _, d := range returned {
		if relevant[d] && !seen[d] {
			seen[d] = true
			hits++
		}
	}
	m := Metrics{Precision: float64(hits) / float64(len(returned))}
	if len(relevant) > 0 {
		m.Recall = float64(hits) / float64(len(relevant))
	}
	return m
}

// MeanMetrics averages a slice of per-query metrics. An empty slice yields
// the zero Metrics.
func MeanMetrics(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var sum Metrics
	for _, m := range ms {
		sum.Precision += m.Precision
		sum.Recall += m.Recall
	}
	return Metrics{
		Precision: sum.Precision / float64(len(ms)),
		Recall:    sum.Recall / float64(len(ms)),
	}
}

// Ratio returns the element-wise ratio of two metric values — the paper
// reports every result "in terms of the ratio of a specific system over the
// centralized system" (§6). A zero denominator yields 0.
func Ratio(system, baseline Metrics) Metrics {
	var out Metrics
	if baseline.Precision > 0 {
		out.Precision = system.Precision / baseline.Precision
	}
	if baseline.Recall > 0 {
		out.Recall = system.Recall / baseline.Recall
	}
	return out
}

// F1 returns the harmonic mean of precision and recall, 0 if both are 0.
func (m Metrics) F1() float64 {
	if m.Precision+m.Recall == 0 {
		return 0
	}
	return 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
}

// AveragePrecision computes the average of the precision values at each rank
// where a relevant document appears in the returned list, normalized by the
// total number of relevant documents — the per-query component of MAP.
// An empty relevant set yields 0.
func AveragePrecision(returned []index.DocID, relevant map[index.DocID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	seen := make(map[index.DocID]bool, len(returned))
	for i, d := range returned {
		if relevant[d] && !seen[d] {
			seen[d] = true
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// MeanAveragePrecision averages per-query AP values (MAP). Empty input
// yields 0.
func MeanAveragePrecision(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	s := 0.0
	for _, ap := range aps {
		s += ap
	}
	return s / float64(len(aps))
}
