// Package ir implements the information-retrieval mathematics of the SPRITE
// paper (§4 and §6): TF·IDF term weighting, the simplified vector-space
// similarity of Lee, Chuang and Seamons ("Document ranking and the
// vector-space model", IEEE Software 1997 — the paper's formula (2)), ranked
// lists, and the precision/recall evaluation metrics.
package ir

import (
	"math"
	"sort"

	"github.com/spritedht/sprite/internal/index"
)

// LargeN is the surrogate corpus size used by distributed rankers. The paper
// observes (§4) that the true N cannot be known in a P2P network, but any
// sufficiently large constant preserves the ranking as long as every peer
// uses the same value.
const LargeN = 1 << 30

// Weight returns the TF·IDF weight w_ik = ntf · log(N/df) (§4). A zero df
// yields weight 0 (the term matches no document and contributes nothing).
func Weight(normFreq float64, n, df int) float64 {
	if df <= 0 || n <= 0 {
		return 0
	}
	return normFreq * math.Log(float64(n)/float64(df))
}

// QueryWeight returns the weight of a query term: the query's term frequency
// normalized by query length, times the same IDF factor. Queries are short,
// so tf is almost always 1/|Q|.
func QueryWeight(freqInQuery, queryLen, n, df int) float64 {
	if queryLen == 0 {
		return 0
	}
	return Weight(float64(freqInQuery)/float64(queryLen), n, df)
}

// Similarity computes the Lee et al. "second method" similarity (§4):
//
//	sim(Q, D) = Σ_j w_Q,j · w_D,j / sqrt(|D|)
//
// where |D| is the number of terms in the document. dot is the accumulated
// numerator; docLen is |D|.
func Similarity(dot float64, docLen int) float64 {
	if docLen <= 0 {
		return 0
	}
	return dot / math.Sqrt(float64(docLen))
}

// Hit is one entry of a ranked list.
type Hit struct {
	Doc   index.DocID
	Score float64
}

// RankedList is a descending-score list of hits. Ties break by DocID so
// rankings are deterministic across runs and platforms.
type RankedList []Hit

// Sort orders the list by descending score, then ascending DocID.
func (rl RankedList) Sort() {
	sort.Slice(rl, func(i, j int) bool {
		if rl[i].Score != rl[j].Score {
			return rl[i].Score > rl[j].Score
		}
		return rl[i].Doc < rl[j].Doc
	})
}

// Top returns the first k hits (or fewer if the list is shorter). The list
// must already be sorted.
func (rl RankedList) Top(k int) RankedList {
	if k > len(rl) {
		k = len(rl)
	}
	return rl[:k]
}

// Docs returns just the document IDs, in rank order.
func (rl RankedList) Docs() []index.DocID {
	out := make([]index.DocID, len(rl))
	for i, h := range rl {
		out[i] = h.Doc
	}
	return out
}

// Rank returns the 0-based rank of doc, or -1 if absent.
func (rl RankedList) Rank(doc index.DocID) int {
	for i, h := range rl {
		if h.Doc == doc {
			return i
		}
	}
	return -1
}

// Accumulator consolidates per-term partial scores into document scores —
// the querying peer's job in SPRITE (§3: "index entries for the same
// document are consolidated"). Document lengths arrive with postings.
//
// Contributions are not summed eagerly: float addition is not associative,
// so summing in completion order would make parallel query execution drift
// from the sequential ranking by ULPs — enough to flip ties. Instead each
// document keeps its contributions in arrival order and Ranked sums them
// left to right, which makes split-and-Merge bit-identical to a single
// sequential accumulation over the same (term, posting) stream.
type Accumulator struct {
	contrib map[index.DocID][]float64
	docLen  map[index.DocID]int
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		contrib: make(map[index.DocID][]float64),
		docLen:  make(map[index.DocID]int),
	}
}

// Accumulate adds the contribution of one (query term, posting) pair.
func (a *Accumulator) Accumulate(doc index.DocID, contribution float64, docLen int) {
	a.contrib[doc] = append(a.contrib[doc], contribution)
	a.docLen[doc] = docLen
}

// Merge appends other's per-document contributions after a's own, leaving
// other unchanged. Merging per-term partial accumulators in term order
// reproduces, bit for bit, the result of accumulating every term into a
// single accumulator sequentially: each document's contribution sequence is
// the concatenation of the per-term sequences in merge order, exactly as the
// sequential loop would have produced.
func (a *Accumulator) Merge(other *Accumulator) {
	if other == nil {
		return
	}
	for doc, cs := range other.contrib {
		a.contrib[doc] = append(a.contrib[doc], cs...)
		a.docLen[doc] = other.docLen[doc]
	}
}

// Ranked finalizes all documents into a sorted ranked list. Per-document
// contributions are summed left to right in arrival order so the result is
// independent of how the accumulator was assembled (direct vs merged).
func (a *Accumulator) Ranked() RankedList {
	rl := make(RankedList, 0, len(a.contrib))
	for doc, cs := range a.contrib {
		dot := 0.0
		for _, c := range cs {
			dot += c
		}
		rl = append(rl, Hit{Doc: doc, Score: Similarity(dot, a.docLen[doc])})
	}
	rl.Sort()
	return rl
}

// Metrics holds the two standard retrieval-quality measures (§6): with top K
// documents returned, K' of them relevant, and R relevant documents overall,
// precision = K'/K and recall = K'/R.
type Metrics struct {
	Precision float64
	Recall    float64
}

// Evaluate computes precision and recall of the returned list against the
// relevant set. An empty returned list or empty relevant set contributes
// zero to the respective metric rather than NaN. A relevant document counts
// once even if the returned list (pathologically) repeats it, keeping both
// metrics within [0, 1].
func Evaluate(returned []index.DocID, relevant map[index.DocID]bool) Metrics {
	if len(returned) == 0 {
		return Metrics{}
	}
	seen := make(map[index.DocID]bool, len(returned))
	hits := 0
	for _, d := range returned {
		if relevant[d] && !seen[d] {
			seen[d] = true
			hits++
		}
	}
	m := Metrics{Precision: float64(hits) / float64(len(returned))}
	if len(relevant) > 0 {
		m.Recall = float64(hits) / float64(len(relevant))
	}
	return m
}

// MeanMetrics averages a slice of per-query metrics. An empty slice yields
// the zero Metrics.
func MeanMetrics(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var sum Metrics
	for _, m := range ms {
		sum.Precision += m.Precision
		sum.Recall += m.Recall
	}
	return Metrics{
		Precision: sum.Precision / float64(len(ms)),
		Recall:    sum.Recall / float64(len(ms)),
	}
}

// Ratio returns the element-wise ratio of two metric values — the paper
// reports every result "in terms of the ratio of a specific system over the
// centralized system" (§6). A zero denominator yields 0.
func Ratio(system, baseline Metrics) Metrics {
	var out Metrics
	if baseline.Precision > 0 {
		out.Precision = system.Precision / baseline.Precision
	}
	if baseline.Recall > 0 {
		out.Recall = system.Recall / baseline.Recall
	}
	return out
}

// F1 returns the harmonic mean of precision and recall, 0 if both are 0.
func (m Metrics) F1() float64 {
	if m.Precision+m.Recall == 0 {
		return 0
	}
	return 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
}

// AveragePrecision computes the average of the precision values at each rank
// where a relevant document appears in the returned list, normalized by the
// total number of relevant documents — the per-query component of MAP.
// An empty relevant set yields 0.
func AveragePrecision(returned []index.DocID, relevant map[index.DocID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	seen := make(map[index.DocID]bool, len(returned))
	for i, d := range returned {
		if relevant[d] && !seen[d] {
			seen[d] = true
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// MeanAveragePrecision averages per-query AP values (MAP). Empty input
// yields 0.
func MeanAveragePrecision(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	s := 0.0
	for _, ap := range aps {
		s += ap
	}
	return s / float64(len(aps))
}
