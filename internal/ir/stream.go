package ir

import (
	"math"
	"unsafe"

	"github.com/spritedht/sprite/internal/index"
)

// This file is the streaming side of the scoring pipeline: the accumulator
// consumes postings cursors directly, so a query never materializes a full
// decoded []Posting list. The float-addition order is unchanged from the
// slice-based loops — each term's postings arrive in the index's served
// (ascending doc-ID) order and terms fold in query-term order — so rankings
// stay bit-identical to the pre-streaming implementation.

// PostingSource yields one term's postings one at a time, in the index's
// served order. index.Cursor implements it; tests and the plain reference
// index wrap slices in SlicePostings.
type PostingSource interface {
	Next() (index.Posting, bool)
}

// SlicePostings adapts a decoded postings slice to PostingSource.
type SlicePostings struct {
	ps []Posting
}

// Posting aliases index.Posting so PostingSource users need only this
// package on the signature.
type Posting = index.Posting

// NewSlicePostings returns a source yielding ps in order.
func NewSlicePostings(ps []Posting) *SlicePostings { return &SlicePostings{ps: ps} }

// Next pops the next posting.
func (s *SlicePostings) Next() (Posting, bool) {
	if len(s.ps) == 0 {
		return Posting{}, false
	}
	p := s.ps[0]
	s.ps = s.ps[1:]
	return p, true
}

// AccumulateStream folds one query term's postings stream into the
// accumulator: each posting contributes wq · Weight(ntf, n, df) to its
// document's running sum. It performs exactly the Accumulate calls a loop
// over the decoded slice would, in the same order.
func (a *Accumulator) AccumulateStream(src PostingSource, wq float64, n, df int) {
	for p, ok := src.Next(); ok; p, ok = src.Next() {
		a.Accumulate(p.Doc, wq*Weight(p.NormFreq(), n, df), p.DocLen)
	}
}

// AccumulateKey is Accumulate for callers holding the doc ID as raw bytes
// (a compressed cursor's scratch buffer): the repeat-contribution path
// probes the map without materializing a string, and the bytes are copied
// only the first time a document is seen — into the accumulator's intern
// arena, so a query performs a handful of chunk allocations instead of one
// small string allocation per matched document.
func (a *Accumulator) AccumulateKey(doc []byte, contribution float64, docLen int) {
	if i, ok := a.pos[index.DocID(doc)]; ok {
		e := &a.entries[i]
		e.dot += contribution
		e.docLen = docLen
		return
	}
	id := a.internKey(doc)
	a.pos[id] = int32(len(a.entries))
	a.entries = append(a.entries, accEntry{doc: id, dot: contribution, docLen: docLen})
}

// internArenaChunk sizes the accumulator's intern chunks: large enough to
// amortize allocation across thousands of doc IDs, small enough that a
// caller keeping one ranked result does not pin much dead space.
const internArenaChunk = 4096

// internKey copies doc into the append-only arena and returns a string view
// of the copy. The view is safe because chunk bytes are written exactly once
// here and the chunk is never recycled — Reset abandons it to the GC.
func (a *Accumulator) internKey(doc []byte) index.DocID {
	if len(doc) == 0 {
		return ""
	}
	if len(a.arena)+len(doc) > cap(a.arena) {
		a.arena = make([]byte, 0, max(internArenaChunk, len(doc)))
	}
	off := len(a.arena)
	a.arena = append(a.arena, doc...)
	return index.DocID(unsafe.String(&a.arena[off], len(doc)))
}

// AccumulateEncoded is AccumulateStream over a compressed cursor's
// zero-string hot path: postings decode straight out of the block bytes into
// the running sums, with no per-posting string or Posting value built. The
// IDF factor is loop-invariant — Weight(nf, n, df) is nf·log(n/df) with the
// same operands every iteration — so it is computed once; each posting's
// contribution wq·(nf·idf) multiplies in the same order as wq·Weight(...)
// and the resulting bits are identical to AccumulateStream over the same
// postings.
func (a *Accumulator) AccumulateEncoded(cur *index.Cursor, wq float64, n, df int) {
	idf := 0.0
	if df > 0 && n > 0 {
		idf = math.Log(float64(n) / float64(df))
	}
	for {
		doc, freq, docLen, ok := cur.NextBytes()
		if !ok {
			return
		}
		nf := 0.0
		if docLen != 0 {
			nf = float64(freq) / float64(docLen)
		}
		a.AccumulateKey(doc, wq*(nf*idf), docLen)
	}
}

// CollectStream scores one term's postings stream into a contribution slice
// — the form the parallel query engine's workers hand to the collector for
// in-term-order folding. dst is appended to and returned, so workers can
// pre-size it from the stream's Len.
func CollectStream(src PostingSource, wq float64, n, df int, dst []Contribution) []Contribution {
	for p, ok := src.Next(); ok; p, ok = src.Next() {
		dst = append(dst, Contribution{Doc: p.Doc, Score: wq * Weight(p.NormFreq(), n, df), DocLen: p.DocLen})
	}
	return dst
}
