// Package transport is the production TCP implementation of
// simnet.Transport: persistent per-peer connection pools, request-ID
// multiplexing so any number of in-flight RPCs share a socket, a
// length-prefixed binary codec (internal/wire) for hot-path payloads with
// gob as the negotiated per-frame fallback, and per-destination
// micro-batching of concurrent sends into single buffered writes.
//
// internal/nettransport remains in the tree as the naive baseline — one
// dial, one gob stream, one RPC per connection — which is exactly what the
// `tcp` experiment in cmd/spritebench compares against. The contract is the
// simnet one: transport-level failures (dial refused, peer hung, connection
// reset mid-call) wrap simnet.ErrUnreachable so the overlay routes around
// them, while caller-initiated cancellation wraps ctx.Err() and is never
// retried or negative-cached.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

// Option configures a Transport.
type Option func(*Transport)

// WithDialTimeout sets the connection-establishment timeout (default 2s).
func WithDialTimeout(d time.Duration) Option {
	return func(t *Transport) { t.dialTimeout = d }
}

// WithCallTimeout bounds one RPC's round trip (default 5s). Because many
// calls multiplex on one socket, this is enforced per call with a timer, not
// with a socket deadline; a call that times out closes the connection (the
// peer is presumed wedged) and negative-caches the peer.
func WithCallTimeout(d time.Duration) Option {
	return func(t *Transport) { t.callTimeout = d }
}

// WithDeadPeerTTL sets how long a peer that failed a dial or timed out is
// negative-cached as dead before calls and Alive probe it again (default
// 1s). Non-positive values are ignored.
func WithDeadPeerTTL(d time.Duration) Option {
	return func(t *Transport) {
		if d > 0 {
			t.deadTTL = d
		}
	}
}

// WithIdleTimeout sets how long a pooled connection may sit with no
// in-flight calls before the reaper closes it (default 60s). Non-positive
// values are ignored.
func WithIdleTimeout(d time.Duration) Option {
	return func(t *Transport) {
		if d > 0 {
			t.idleTimeout = d
		}
	}
}

// WithMaxConnsPerPeer caps the pool size per destination (default 2). The
// pool dials a second connection only when every existing one has
// muxPressure calls in flight, so the cap is a burst valve, not a target.
func WithMaxConnsPerPeer(n int) Option {
	return func(t *Transport) {
		if n > 0 {
			t.maxConns = n
		}
	}
}

// WithTelemetry records dials, open/idle connection gauges (with peaks),
// per-peer in-flight gauges, batch-size and latency histograms, per-codec
// byte counters, and per-type call counts into reg.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(t *Transport) { t.tel = reg }
}

// muxPressure is the in-flight count on the least-loaded connection above
// which the pool dials another (subject to WithMaxConnsPerPeer).
const muxPressure = 64

// Transport is a pooled, multiplexed TCP implementation of simnet.Transport.
// One instance can host many local peers (each Register binds a listener)
// and pools outbound connections per destination address.
type Transport struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	idleTimeout time.Duration
	deadTTL     time.Duration
	maxConns    int
	tel         *telemetry.Registry
	met         metrics

	mu        sync.Mutex
	local     map[simnet.Addr]*listener
	pools     map[simnet.Addr]*pool
	deadUntil map[simnet.Addr]time.Time
	lastErr   error
	closed    bool

	reapStop chan struct{}
	reapDone chan struct{}
}

// New creates a transport. Close must be called to release its pooled
// connections and the idle reaper.
func New(opts ...Option) *Transport {
	t := &Transport{
		dialTimeout: 2 * time.Second,
		callTimeout: 5 * time.Second,
		idleTimeout: 60 * time.Second,
		deadTTL:     time.Second,
		maxConns:    2,
		local:       make(map[simnet.Addr]*listener),
		pools:       make(map[simnet.Addr]*pool),
		deadUntil:   make(map[simnet.Addr]time.Time),
		reapStop:    make(chan struct{}),
		reapDone:    make(chan struct{}),
	}
	for _, o := range opts {
		o(t)
	}
	t.met.init(t.tel)
	go t.reapLoop()
	return t
}

// listener is one locally hosted peer: a bound TCP listener plus the set of
// accepted multiplexed connections (closed with it).
type listener struct {
	ln   net.Listener
	done chan struct{}

	mu      sync.Mutex
	handler simnet.Handler
	conns   map[*serverConn]struct{}
}

func (l *listener) currentHandler() simnet.Handler {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.handler
}

func (l *listener) addConn(c *serverConn) {
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.mu.Unlock()
}

func (l *listener) removeConn(c *serverConn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

func (l *listener) closeAll() {
	close(l.done)
	l.ln.Close()
	l.mu.Lock()
	conns := make([]*serverConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

// Register binds a TCP listener at addr and serves incoming RPCs with h.
// addr must be a dialable host:port. If binding fails the peer is recorded
// as dead; LastError reports the cause.
func (t *Transport) Register(addr simnet.Addr, h simnet.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		t.lastErr = fmt.Errorf("transport: register %s: transport closed", addr)
		return
	}
	if old, ok := t.local[addr]; ok {
		old.mu.Lock()
		old.handler = h
		old.mu.Unlock()
		return
	}
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		t.deadUntil[addr] = time.Now().Add(24 * time.Hour)
		t.lastErr = fmt.Errorf("transport: listen %s: %w", addr, err)
		return
	}
	l := &listener{
		ln:      ln,
		handler: h,
		done:    make(chan struct{}),
		conns:   make(map[*serverConn]struct{}),
	}
	t.local[addr] = l
	delete(t.deadUntil, addr)
	go t.serve(l)
}

// LastError returns the most recent registration failure, if any.
func (t *Transport) LastError() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastErr
}

// Unregister closes addr's listener and every connection accepted on it.
func (t *Transport) Unregister(addr simnet.Addr) {
	t.mu.Lock()
	l, ok := t.local[addr]
	if ok {
		delete(t.local, addr)
	}
	t.mu.Unlock()
	if ok {
		l.closeAll()
	}
}

// Close shuts down every listener, server connection, and pooled client
// connection, and stops the idle reaper. Calls in flight fail.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	ls := make([]*listener, 0, len(t.local))
	for _, l := range t.local {
		ls = append(ls, l)
	}
	t.local = make(map[simnet.Addr]*listener)
	ps := make([]*pool, 0, len(t.pools))
	for _, p := range t.pools {
		ps = append(ps, p)
	}
	t.pools = make(map[simnet.Addr]*pool)
	t.mu.Unlock()

	close(t.reapStop)
	for _, l := range ls {
		l.closeAll()
	}
	for _, p := range ps {
		p.closeAll(errors.New("transport closed"))
	}
	<-t.reapDone
}

func (t *Transport) serve(l *listener) {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.done:
				return
			default:
				continue
			}
		}
		sc := newServerConn(t, l, conn)
		l.addConn(sc)
	}
}

// pool holds the client connections to one destination.
type pool struct {
	t        *Transport
	addr     simnet.Addr
	inflight *telemetry.Gauge

	mu      sync.Mutex
	conns   []*clientConn
	dialing int
	dialed  chan struct{} // closed when an in-progress dial completes; nil when idle
}

func (t *Transport) pool(addr simnet.Addr) *pool {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pools[addr]
	if !ok {
		p = &pool{t: t, addr: addr, inflight: t.tel.Gauge("tcp.inflight." + string(addr))}
		t.pools[addr] = p
	}
	return p
}

// get returns a connection to use for one call: the least-loaded open
// connection, dialing a new one when the pool is empty or every connection
// is above the mux-pressure threshold and the cap allows. Concurrent callers
// arriving at an empty pool coalesce onto one dial instead of each opening a
// socket — the point of pooling is that a burst of fan-out calls shares
// connections.
func (p *pool) get(ctx context.Context) (*clientConn, error) {
	for {
		p.mu.Lock()
		best := p.leastLoadedLocked()
		if best != nil {
			_, inflight := best.idleState()
			if len(p.conns)+p.dialing >= p.t.maxConns || inflight < muxPressure {
				p.mu.Unlock()
				return best, nil
			}
		}
		if best == nil && p.dialing > 0 {
			// Someone else is already dialing the first connection; share it.
			if p.dialed == nil {
				p.dialed = make(chan struct{})
			}
			wait := p.dialed
			p.mu.Unlock()
			select {
			case <-wait:
				continue
			case <-ctx.Done():
				p.t.met.errCtx.Inc()
				return nil, fmt.Errorf("transport: dial %s: %w", p.addr, ctx.Err())
			}
		}
		p.dialing++
		p.mu.Unlock()

		c, err := p.dial(ctx)
		p.mu.Lock()
		p.dialing--
		if p.dialed != nil {
			close(p.dialed)
			p.dialed = nil
		}
		p.mu.Unlock()
		if err != nil {
			if best != nil {
				// The existing connection outranks a failed growth dial.
				return best, nil
			}
			return nil, err
		}
		return c, nil
	}
}

func (p *pool) leastLoadedLocked() *clientConn {
	var best *clientConn
	var bestLoad int64
	for _, c := range p.conns {
		_, load := c.idleState()
		if best == nil || load < bestLoad {
			best, bestLoad = c, load
		}
	}
	return best
}

// dial establishes, registers, and returns a fresh connection.
func (p *pool) dial(ctx context.Context) (*clientConn, error) {
	t := p.t
	d := net.Dialer{Timeout: t.dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", string(p.addr))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			t.met.errCtx.Inc()
			return nil, fmt.Errorf("transport: dial %s: %w", p.addr, cerr)
		}
		t.markDead(p.addr)
		t.met.dialErrors.Inc()
		return nil, fmt.Errorf("%w: %s: %v", simnet.ErrUnreachable, p.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := newClientConn(t, p, nc)

	t.mu.Lock()
	closed := t.closed
	if !closed {
		delete(t.deadUntil, p.addr)
	}
	t.mu.Unlock()
	if closed {
		c.close(errors.New("transport closed"))
		return nil, fmt.Errorf("transport: dial %s: transport closed", p.addr)
	}
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
	t.met.dials.Inc()
	t.met.connsOpen.Add(1)
	return c, nil
}

// remove drops a retired connection from the pool.
func (p *pool) remove(c *clientConn) {
	p.mu.Lock()
	for i, pc := range p.conns {
		if pc == c {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			p.mu.Unlock()
			p.t.met.connsOpen.Add(-1)
			return
		}
	}
	p.mu.Unlock()
}

// closeAll retires every connection (transport shutdown).
func (p *pool) closeAll(cause error) {
	p.mu.Lock()
	conns := append([]*clientConn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		c.close(cause)
	}
}

// size reports open connections in this pool.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// OpenConns reports the total pooled client connections currently open —
// what the mux tests assert on and the tcp experiment reports.
func (t *Transport) OpenConns() int {
	t.mu.Lock()
	pools := make([]*pool, 0, len(t.pools))
	for _, p := range t.pools {
		pools = append(pools, p)
	}
	t.mu.Unlock()
	n := 0
	for _, p := range pools {
		n += p.size()
	}
	return n
}

// reapLoop periodically retires connections idle past the idle timeout and
// refreshes the idle-connection gauge.
func (t *Transport) reapLoop() {
	defer close(t.reapDone)
	interval := t.idleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 15*time.Second {
		interval = 15 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.reapStop:
			return
		case <-tick.C:
			t.reapOnce(time.Now())
		}
	}
}

func (t *Transport) reapOnce(now time.Time) {
	t.mu.Lock()
	pools := make([]*pool, 0, len(t.pools))
	for _, p := range t.pools {
		pools = append(pools, p)
	}
	t.mu.Unlock()
	idle := int64(0)
	for _, p := range pools {
		p.mu.Lock()
		conns := append([]*clientConn(nil), p.conns...)
		p.mu.Unlock()
		for _, c := range conns {
			lastUsed, inflight := c.idleState()
			if inflight > 0 {
				continue
			}
			if now.Sub(lastUsed) > t.idleTimeout {
				c.close(errors.New("idle timeout"))
			} else {
				idle++
			}
		}
	}
	t.met.connsIdle.Set(idle)
}

// Call performs a synchronous RPC over a pooled connection.
func (t *Transport) Call(from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	return t.CallCtx(context.Background(), from, to, msg)
}

// CallCtx is Call honoring ctx. Caller-initiated cancellation wraps
// ctx.Err(); transport failures — dial refused, negative-cached dead peer,
// per-call timeout against a wedged peer, connection reset mid-call — wrap
// simnet.ErrUnreachable. A call whose request frame provably never reached
// the socket (the pooled connection was retired first) is retried once on a
// fresh connection; a call that may have been delivered is never retried
// here, because the transport cannot know whether the handler ran.
func (t *Transport) CallCtx(ctx context.Context, from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	if cerr := ctx.Err(); cerr != nil {
		t.met.errCtx.Inc()
		return simnet.Message{}, fmt.Errorf("transport: %s to %s aborted: %w", msg.Type, to, cerr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return simnet.Message{}, fmt.Errorf("%w: %s: transport closed", simnet.ErrUnreachable, to)
	}
	if until, ok := t.deadUntil[to]; ok && time.Now().Before(until) {
		t.mu.Unlock()
		t.met.errDead.Inc()
		return simnet.Message{}, fmt.Errorf("%w: %s: negative-cached", simnet.ErrUnreachable, to)
	}
	t.mu.Unlock()

	start := time.Now()
	p := t.pool(to)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		c, err := p.get(ctx)
		if err != nil {
			return simnet.Message{}, err
		}
		reply, err := t.callOn(ctx, c, from, to, msg)
		if errors.Is(err, errConnClosed) {
			// The frame never reached the kernel; safe to retry once on a
			// fresh connection (covers a pooled conn retired by a peer
			// restart between calls).
			lastErr = err
			continue
		}
		if err != nil {
			return simnet.Message{}, err
		}
		t.met.call(msg.Type, msg.Size+reply.Size, time.Since(start))
		return reply, nil
	}
	t.met.errSend.Inc()
	return simnet.Message{}, fmt.Errorf("%w: %s: %v", simnet.ErrUnreachable, to, lastErr)
}

// callOn runs one attempt over a specific connection.
func (t *Transport) callOn(ctx context.Context, c *clientConn, from, to simnet.Addr, msg simnet.Message) (simnet.Message, error) {
	id, ch, err := c.call(from, msg)
	if err != nil {
		if errors.Is(err, errConnClosed) {
			return simnet.Message{}, err
		}
		t.met.errEncode.Inc()
		return simnet.Message{}, err
	}
	timer := time.NewTimer(t.callTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		c.touch()
		if res.err != nil {
			// Connection died mid-call: the request may or may not have been
			// delivered, so this is unreachable, not retryable.
			if cerr := ctx.Err(); cerr != nil {
				t.met.errCtx.Inc()
				return simnet.Message{}, fmt.Errorf("transport: %s to %s: %w", msg.Type, to, cerr)
			}
			t.met.errConn.Inc()
			return simnet.Message{}, fmt.Errorf("%w: %s: %v", simnet.ErrUnreachable, to, res.err)
		}
		if res.resp.errMsg != "" {
			t.met.errRemote.Inc()
			return simnet.Message{}, fmt.Errorf("transport: remote %s: %s", to, res.resp.errMsg)
		}
		payload, err := decodePayload(res.resp.codec, res.resp.payload)
		if err != nil {
			t.met.errDecode.Inc()
			return simnet.Message{}, fmt.Errorf("transport: reply from %s: %w", to, err)
		}
		return simnet.Message{Type: res.resp.msgType, Payload: payload, Size: res.resp.size}, nil
	case <-ctx.Done():
		c.finish(id)
		t.met.errCtx.Inc()
		return simnet.Message{}, fmt.Errorf("transport: %s to %s: %w", msg.Type, to, ctx.Err())
	case <-timer.C:
		// The peer accepted the frame but never answered within the call
		// timeout: presume it wedged, retire the shared socket (other calls
		// on it fail fast instead of waiting out their own timers), and
		// negative-cache the peer.
		c.finish(id)
		c.close(fmt.Errorf("call timeout after %v", t.callTimeout))
		t.markDead(to)
		t.met.errTimeout.Inc()
		return simnet.Message{}, fmt.Errorf("%w: %s: call timeout", simnet.ErrUnreachable, to)
	}
}

// Alive reports reachability: local listeners are authoritative, then the
// negative cache, then any open pooled connection; otherwise it probes with
// a dial whose connection is kept in the pool (a successful probe warms the
// path the next call uses).
func (t *Transport) Alive(addr simnet.Addr) bool {
	t.mu.Lock()
	if _, ok := t.local[addr]; ok {
		t.mu.Unlock()
		return true
	}
	if until, ok := t.deadUntil[addr]; ok && time.Now().Before(until) {
		t.mu.Unlock()
		return false
	}
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return false
	}
	p := t.pool(addr)
	if p.size() > 0 {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.dialTimeout)
	defer cancel()
	if _, err := p.get(ctx); err != nil {
		return false
	}
	return true
}

func (t *Transport) markDead(addr simnet.Addr) {
	t.mu.Lock()
	t.deadUntil[addr] = time.Now().Add(t.deadTTL)
	t.mu.Unlock()
}

var _ simnet.Transport = (*Transport)(nil)
