package transport

import (
	"time"

	"github.com/spritedht/sprite/internal/telemetry"
)

// metrics caches the transport's fixed-name instruments so the hot path
// never takes the registry lock. All fields are nil (valid no-ops) when no
// registry is installed; only the per-type counters still resolve names per
// call, matching what nettransport pays.
type metrics struct {
	tel *telemetry.Registry

	dials      *telemetry.Counter
	dialErrors *telemetry.Counter
	connsOpen  *telemetry.Gauge
	connsIdle  *telemetry.Gauge

	batchFrames *telemetry.Histogram
	batchBytes  *telemetry.Histogram
	latency     *telemetry.Histogram

	codecBinaryBytes *telemetry.Counter
	codecGobBytes    *telemetry.Counter

	errCtx     *telemetry.Counter
	errDead    *telemetry.Counter
	errTimeout *telemetry.Counter
	errSend    *telemetry.Counter
	errConn    *telemetry.Counter
	errRemote  *telemetry.Counter
	errEncode  *telemetry.Counter
	errDecode  *telemetry.Counter
}

func (m *metrics) init(tel *telemetry.Registry) {
	m.tel = tel
	m.dials = tel.Counter("tcp.dials")
	m.dialErrors = tel.Counter("tcp.errors.dial")
	m.connsOpen = tel.Gauge("tcp.conns.open")
	m.connsIdle = tel.Gauge("tcp.conns.idle")
	m.batchFrames = tel.Histogram("tcp.batch.frames")
	m.batchBytes = tel.Histogram("tcp.batch.bytes")
	m.latency = tel.Histogram("tcp.latency_us")
	m.codecBinaryBytes = tel.Counter("tcp.codec.binary.bytes")
	m.codecGobBytes = tel.Counter("tcp.codec.gob.bytes")
	m.errCtx = tel.Counter("tcp.errors.ctx")
	m.errDead = tel.Counter("tcp.errors.dead")
	m.errTimeout = tel.Counter("tcp.errors.timeout")
	m.errSend = tel.Counter("tcp.errors.send")
	m.errConn = tel.Counter("tcp.errors.conn")
	m.errRemote = tel.Counter("tcp.errors.remote")
	m.errEncode = tel.Counter("tcp.errors.encode")
	m.errDecode = tel.Counter("tcp.errors.decode")
}

// observeBatch records one writer flush: how many frames coalesced and their
// total bytes.
func (m *metrics) observeBatch(frames, bytes int) {
	m.batchFrames.Observe(int64(frames))
	m.batchBytes.Observe(int64(bytes))
}

// countCodec attributes one encoded frame's bytes to the codec that carried
// its payload.
func (m *metrics) countCodec(codec byte, frameBytes int) {
	switch codec {
	case codecBinary:
		m.codecBinaryBytes.Add(int64(frameBytes))
	case codecGob:
		m.codecGobBytes.Add(int64(frameBytes))
	}
}

// call records one successful round trip.
func (m *metrics) call(msgType string, bytes int, elapsed time.Duration) {
	if m.tel == nil {
		return
	}
	m.tel.Counter("tcp.calls." + msgType).Inc()
	m.tel.Counter("tcp.bytes." + msgType).Add(int64(bytes))
	m.latency.Observe(elapsed.Microseconds())
}

// served records one handled request on the server side.
func (m *metrics) served(msgType string) {
	if m.tel == nil {
		return
	}
	m.tel.Counter("tcp.served." + msgType).Inc()
}
