package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/spritedht/sprite/internal/fanout"
	"github.com/spritedht/sprite/internal/simnet"
)

// errConnClosed is the internal "this conn is no longer usable" sentinel a
// call sees when its frame was never handed to the kernel (push refused).
// Such calls are safe to retry on a fresh connection because the peer cannot
// have observed them; CallCtx does exactly that, once.
var errConnClosed = errors.New("transport: connection closed")

// callResult is what the reader (or the closer) delivers to a waiting call.
type callResult struct {
	resp *response
	err  error
}

// clientConn is one pooled, multiplexed client socket to a single peer.
// Calls from any number of goroutines encode a request frame, park a result
// channel in the pending map under a fresh request ID, and push the frame
// into the outbound window; a writer goroutine drains the window in bursts
// (micro-batching: one buffered write + flush per burst, however many calls
// landed in it), and a reader goroutine demultiplexes response frames back
// to the pending channels by ID.
type clientConn struct {
	t    *Transport
	pool *pool
	c    net.Conn
	out  *fanout.Window[[]byte]

	mu       sync.Mutex
	pending  map[uint64]chan callResult
	nextID   uint64
	closed   bool
	closeErr error

	inflight int64 // guarded by mu; mirrored into the pool's gauge
	lastUsed int64 // unix nanos of last call completion; atomic via mu
}

func newClientConn(t *Transport, p *pool, c net.Conn) *clientConn {
	cc := &clientConn{
		t:       t,
		pool:    p,
		c:       c,
		out:     fanout.NewWindow[[]byte](),
		pending: make(map[uint64]chan callResult),
	}
	cc.touch()
	go cc.writeLoop()
	go cc.readLoop()
	return cc
}

func (c *clientConn) touch() {
	c.mu.Lock()
	c.lastUsed = time.Now().UnixNano()
	c.mu.Unlock()
}

// idleSince reports the last-use time and current in-flight count for the
// pool reaper.
func (c *clientConn) idleState() (lastUsed time.Time, inflight int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Unix(0, c.lastUsed), c.inflight
}

// call performs one RPC over this connection. done is the caller's deadline
// channel (per-call timer or ctx); the caller classifies the error.
func (c *clientConn) call(from simnet.Addr, msg simnet.Message) (uint64, chan callResult, error) {
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		if err == nil {
			err = errConnClosed
		}
		return 0, nil, fmt.Errorf("%w: %v", errConnClosed, err)
	}
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.inflight++
	c.lastUsed = time.Now().UnixNano()
	c.mu.Unlock()
	c.pool.inflight.Add(1)

	frame, codec, err := appendRequestFrame(nil, id, string(from), msg.Type, msg.Size, msg.Payload)
	if err != nil {
		c.finish(id)
		return 0, nil, err
	}
	c.t.met.countCodec(codec, len(frame))
	if !c.out.Push(frame) {
		c.finish(id)
		c.mu.Lock()
		closeErr := c.closeErr
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", errConnClosed, closeErr)
	}
	return id, ch, nil
}

// finish deregisters a call (completed, canceled, or timed out) and drops
// the in-flight accounting. Idempotent per ID: the reader deletes the entry
// when it delivers, so a late finish after delivery is a no-op.
func (c *clientConn) finish(id uint64) {
	c.mu.Lock()
	_, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
		c.inflight--
	}
	c.lastUsed = time.Now().UnixNano()
	c.mu.Unlock()
	if ok {
		c.pool.inflight.Add(-1)
	}
}

// take removes and returns the pending channel for id, if still registered.
func (c *clientConn) take(id uint64) (chan callResult, bool) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
		c.inflight--
	}
	c.mu.Unlock()
	if ok {
		c.pool.inflight.Add(-1)
	}
	return ch, ok
}

// writeLoop drains the outbound window and writes each burst with a single
// buffered write + flush — the transport's micro-batching. Concurrent calls
// that queue while a flush is in progress coalesce into the next burst.
func (c *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(c.c, 64<<10)
	for {
		burst, ok := c.out.Drain()
		if !ok {
			return
		}
		var bytes int
		for _, f := range burst {
			bytes += len(f)
			if _, err := bw.Write(f); err != nil {
				c.close(fmt.Errorf("transport: write: %w", err))
				return
			}
		}
		c.c.SetWriteDeadline(time.Now().Add(c.t.callTimeout))
		if err := bw.Flush(); err != nil {
			c.close(fmt.Errorf("transport: flush: %w", err))
			return
		}
		c.t.met.observeBatch(len(burst), bytes)
	}
}

// readLoop parses response frames and routes them to waiting calls. Any read
// error retires the connection; calls still pending fail with that error and
// the pool dials fresh on the next use.
func (c *clientConn) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	for {
		body, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			c.close(fmt.Errorf("transport: read: %w", err))
			return
		}
		_, resp, err := parseFrame(body)
		if err != nil || resp == nil {
			c.close(fmt.Errorf("transport: protocol error: %v", err))
			return
		}
		if ch, ok := c.take(resp.id); ok {
			ch <- callResult{resp: resp}
		}
		// An unknown ID is a response to a call that timed out or was
		// canceled; drop it.
	}
}

// close retires the connection: fails every pending call, stops both loops,
// and removes it from the pool. Idempotent.
func (c *clientConn) close(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	pend := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.inflight = 0
	c.mu.Unlock()

	c.out.Close()
	c.c.Close()
	for _, ch := range pend {
		ch <- callResult{err: fmt.Errorf("%w: %v", errConnClosed, err)}
	}
	if n := len(pend); n > 0 {
		c.pool.inflight.Add(-int64(n))
	}
	c.pool.remove(c)
}

// serverConn is the accepting side of one multiplexed socket: a reader that
// dispatches each request frame on its own goroutine, and the same
// window-batched writer for responses (concurrent handlers' replies coalesce
// into shared flushes).
type serverConn struct {
	t   *Transport
	l   *listener
	c   net.Conn
	out *fanout.Window[[]byte]
}

func newServerConn(t *Transport, l *listener, c net.Conn) *serverConn {
	sc := &serverConn{t: t, l: l, c: c, out: fanout.NewWindow[[]byte]()}
	go sc.writeLoop()
	go sc.readLoop()
	return sc
}

func (s *serverConn) writeLoop() {
	bw := bufio.NewWriterSize(s.c, 64<<10)
	for {
		burst, ok := s.out.Drain()
		if !ok {
			return
		}
		var bytes int
		for _, f := range burst {
			bytes += len(f)
			if _, err := bw.Write(f); err != nil {
				s.close()
				return
			}
		}
		s.c.SetWriteDeadline(time.Now().Add(s.t.callTimeout))
		if err := bw.Flush(); err != nil {
			s.close()
			return
		}
		s.t.met.observeBatch(len(burst), bytes)
	}
}

func (s *serverConn) readLoop() {
	br := bufio.NewReaderSize(s.c, 64<<10)
	for {
		body, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			s.close()
			return
		}
		req, _, err := parseFrame(body)
		if err != nil || req == nil {
			s.close()
			return
		}
		go s.dispatch(req)
	}
}

// dispatch decodes one request, runs the handler, and queues the response.
func (s *serverConn) dispatch(req *request) {
	payload, err := decodePayload(req.codec, req.payload)
	var reply simnet.Message
	if err == nil {
		h := s.l.currentHandler()
		if h == nil {
			err = fmt.Errorf("transport: no handler registered")
		} else {
			reply, err = h.HandleMessage(simnet.Addr(req.from), simnet.Message{
				Type:    req.msgType,
				Payload: payload,
				Size:    req.size,
			})
		}
	}
	s.t.met.served(req.msgType)
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
		// The payload of a failed call is not sent; the error string is the
		// whole response.
		reply = simnet.Message{}
	}
	frame, codec, err := appendResponseFrame(nil, req.id, reply.Type, reply.Size, errMsg, reply.Payload)
	if err != nil {
		// Response payload failed to encode: report that instead so the
		// caller is not left to time out.
		frame, codec, err = appendResponseFrame(nil, req.id, "", 0, "transport: encode response: "+err.Error(), nil)
		if err != nil {
			s.close()
			return
		}
	}
	s.t.met.countCodec(codec, len(frame))
	s.out.Push(frame) // a refused push means the conn died; the client copes
}

func (s *serverConn) close() {
	s.out.Close()
	s.c.Close()
	s.l.removeConn(s)
}
