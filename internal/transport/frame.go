package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/spritedht/sprite/internal/wire"
)

// Wire framing. Every frame on a multiplexed connection is:
//
//	+----------------+----------------------------------------------+
//	| len uint32 BE  | body (len bytes)                             |
//	+----------------+----------------------------------------------+
//
//	body (request):   kind=0 | id u64 BE | from str | type str |
//	                  size uvarint | codec u8 | payload...
//	body (response):  kind=1 | id u64 BE | type str | size uvarint |
//	                  err str | codec u8 | payload...
//
// where `str` is a uvarint length followed by that many bytes, `size` is the
// message's simulated accounting size, and the payload runs to the end of
// the body (its length is implied by the frame length). `id` ties a response
// to the request it answers, which is what lets many in-flight RPCs share
// one socket: responses may come back in any order. `codec` records how the
// payload was encoded — the hand-rolled binary codec when the concrete type
// registered one (wire.RegisterBinary), gob otherwise — so each frame is
// self-describing and unregistered payload types degrade gracefully instead
// of breaking the connection.
const (
	frameRequest  = 0
	frameResponse = 1

	codecNone   = 0 // nil payload
	codecBinary = 1
	codecGob    = 2

	// frameHeaderLen is the fixed prefix before the variable fields: the
	// kind byte and the request ID.
	frameHeaderLen = 1 + 8
)

// DefaultMaxFrame bounds a single frame's body. Frames above it are refused
// on both send (error to the caller) and receive (connection closed): a
// length prefix is only a safety feature if the reader refuses to believe
// absurd values before allocating for them.
const DefaultMaxFrame = 64 << 20

// appendRequestFrame encodes one request frame, including the length prefix.
func appendRequestFrame(dst []byte, id uint64, from, msgType string, size int, payload any) ([]byte, byte, error) {
	e := wire.NewEncoder(append(dst, 0, 0, 0, 0)) // length placeholder
	e.Raw([]byte{frameRequest})
	e.Raw(binary.BigEndian.AppendUint64(nil, id))
	e.String(from)
	e.String(msgType)
	e.Uint(uint64(size))
	codec, err := appendPayload(e, payload)
	if err != nil {
		return dst, codec, fmt.Errorf("transport: encode %s request: %w", msgType, err)
	}
	framed, err := finishFrame(dst, e.Bytes())
	return framed, codec, err
}

// appendResponseFrame encodes one response frame.
func appendResponseFrame(dst []byte, id uint64, msgType string, size int, errMsg string, payload any) ([]byte, byte, error) {
	e := wire.NewEncoder(append(dst, 0, 0, 0, 0))
	e.Raw([]byte{frameResponse})
	e.Raw(binary.BigEndian.AppendUint64(nil, id))
	e.String(msgType)
	e.Uint(uint64(size))
	e.String(errMsg)
	codec, err := appendPayload(e, payload)
	if err != nil {
		return dst, codec, fmt.Errorf("transport: encode %s response: %w", msgType, err)
	}
	framed, err := finishFrame(dst, e.Bytes())
	return framed, codec, err
}

// finishFrame back-fills the length prefix and enforces the frame cap.
func finishFrame(dst, framed []byte) ([]byte, error) {
	body := len(framed) - len(dst) - 4
	if body > DefaultMaxFrame {
		return dst, fmt.Errorf("transport: frame body %d bytes exceeds cap %d", body, DefaultMaxFrame)
	}
	binary.BigEndian.PutUint32(framed[len(dst):], uint32(body))
	return framed, nil
}

// appendPayload writes the codec byte and the encoded payload.
func appendPayload(e *wire.Encoder, payload any) (byte, error) {
	switch {
	case payload == nil:
		e.Raw([]byte{codecNone})
		return codecNone, nil
	case wire.HasBinary(payload):
		e.Raw([]byte{codecBinary})
		e.Append(payload)
		return codecBinary, nil
	default:
		e.Raw([]byte{codecGob})
		var buf bytes.Buffer
		iface := payload
		if err := gob.NewEncoder(&buf).Encode(&iface); err != nil {
			return codecGob, err
		}
		e.Raw(buf.Bytes())
		return codecGob, nil
	}
}

// decodePayload reverses appendPayload given the codec byte and raw bytes.
func decodePayload(codec byte, data []byte) (any, error) {
	switch codec {
	case codecNone:
		if len(data) != 0 {
			return nil, fmt.Errorf("transport: %d payload bytes on a codec-none frame", len(data))
		}
		return nil, nil
	case codecBinary:
		return wire.DecodeBinary(data)
	case codecGob:
		var v any
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
			return nil, fmt.Errorf("transport: gob payload: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload codec %d", codec)
	}
}

// request is a parsed request frame.
type request struct {
	id      uint64
	from    string
	msgType string
	size    int
	codec   byte
	payload []byte
}

// response is a parsed response frame.
type response struct {
	id      uint64
	msgType string
	size    int
	errMsg  string
	codec   byte
	payload []byte
}

// readFrame reads one length-prefixed frame body from r, enforcing the cap.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds cap %d", n, maxFrame)
	}
	if n < frameHeaderLen {
		return nil, fmt.Errorf("transport: frame of %d bytes shorter than header", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// parseFrame splits a frame body into its typed form: (*request, nil) or
// (nil, *response).
func parseFrame(body []byte) (*request, *response, error) {
	kind := body[0]
	id := binary.BigEndian.Uint64(body[1:frameHeaderLen])
	d := wire.NewDecoder(body[frameHeaderLen:])
	switch kind {
	case frameRequest:
		req := &request{id: id}
		req.from = d.String()
		req.msgType = d.String()
		req.size = int(d.Uint())
		req.codec, req.payload = finishParse(d)
		if d.Err() != nil {
			return nil, nil, fmt.Errorf("transport: malformed request frame: %w", d.Err())
		}
		return req, nil, nil
	case frameResponse:
		resp := &response{id: id}
		resp.msgType = d.String()
		resp.size = int(d.Uint())
		resp.errMsg = d.String()
		resp.codec, resp.payload = finishParse(d)
		if d.Err() != nil {
			return nil, nil, fmt.Errorf("transport: malformed response frame: %w", d.Err())
		}
		return nil, resp, nil
	default:
		return nil, nil, fmt.Errorf("transport: unknown frame kind %d", kind)
	}
}

// finishParse reads the codec byte and hands back the payload tail.
func finishParse(d *wire.Decoder) (byte, []byte) {
	var codec byte
	if b := d.Raw(1); len(b) == 1 {
		codec = b[0]
	}
	return codec, d.Raw(d.Remaining())
}
