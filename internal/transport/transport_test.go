package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/nettransport"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
)

func echo() simnet.Handler {
	return simnet.HandlerFunc(func(from simnet.Addr, msg simnet.Message) (simnet.Message, error) {
		return simnet.Message{Type: msg.Type + ".ok", Payload: msg.Payload, Size: msg.Size}, nil
	})
}

func freeAddrs(t *testing.T, n int) []simnet.Addr {
	t.Helper()
	addrs, err := nettransport.FreeAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func TestCallRoundTrip(t *testing.T) {
	tr := New()
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, echo())
	if err := tr.LastError(); err != nil {
		t.Fatalf("Register: %v", err)
	}
	reply, err := tr.Call("client", addr, simnet.Message{Type: "ping", Payload: "hello", Size: 5})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if reply.Type != "ping.ok" || reply.Payload.(string) != "hello" {
		t.Fatalf("reply = %+v", reply)
	}
	if got := tr.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d, want 1 (pooled, not dial-per-call)", got)
	}
}

func TestPoolReusesOneConnAcrossSequentialCalls(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithTelemetry(reg))
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, echo())
	for i := 0; i < 50; i++ {
		if _, err := tr.Call("client", addr, simnet.Message{Type: "ping", Size: 1}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if dials := reg.Counter("tcp.dials").Value(); dials != 1 {
		t.Fatalf("tcp.dials = %d after 50 sequential calls, want 1", dials)
	}
	if got := tr.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d, want 1", got)
	}
}

// TestConcurrentCallsMultiplexOnOneSocket is the mux guarantee: many calls
// in flight at once, all answered, over a single pooled connection.
func TestConcurrentCallsMultiplexOnOneSocket(t *testing.T) {
	const callers = 32
	arrived := make(chan struct{}, callers)
	release := make(chan struct{})
	tr := New()
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, simnet.HandlerFunc(func(_ simnet.Addr, msg simnet.Message) (simnet.Message, error) {
		arrived <- struct{}{}
		<-release
		return simnet.Message{Type: "ok", Payload: msg.Payload}, nil
	}))

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := tr.Call("client", addr, simnet.Message{Type: "hold", Payload: fmt.Sprintf("v%d", i)})
			if err != nil {
				errs <- err
				return
			}
			if reply.Payload.(string) != fmt.Sprintf("v%d", i) {
				errs <- fmt.Errorf("call %d got %v (response demuxed to wrong caller)", i, reply.Payload)
			}
		}(i)
	}
	// Wait until every request is simultaneously in a handler, so all 32
	// are provably in flight together, then check the socket count.
	for i := 0; i < callers; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d calls arrived", i, callers)
		}
	}
	if got := tr.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d with %d calls in flight, want 1", got, callers)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReconnectAfterPeerRestart kills a peer (listener and its accepted
// connections), brings it back at the same address, and verifies the pool
// recovers transparently.
func TestReconnectAfterPeerRestart(t *testing.T) {
	server := New()
	defer server.Close()
	client := New(WithDeadPeerTTL(50 * time.Millisecond))
	defer client.Close()
	addr := freeAddrs(t, 1)[0]
	server.Register(addr, echo())
	if _, err := client.Call("client", addr, simnet.Message{Type: "ping"}); err != nil {
		t.Fatalf("pre-restart call: %v", err)
	}
	if got := client.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d before restart", got)
	}

	server.Unregister(addr)
	// Rebind can race the kernel releasing the port; retry briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		server.Register(addr, echo())
		if server.LastError() == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, server.LastError())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The pooled connection is stale (or already retired by the reader's
	// EOF). The call path must dial fresh — possibly after the dead-peer TTL
	// from a lost race — and succeed without any caller-visible reset.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, err := client.Call("client", addr, simnet.Message{Type: "ping"})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-restart call never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := client.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d after recovery, want 1", got)
	}
}

// TestCtxCancellationLeavesPoolHealthy cancels one slow call and verifies
// (a) the error wraps ctx.Err, not ErrUnreachable, and (b) the pooled
// connection survives and still serves later calls.
func TestCtxCancellationLeavesPoolHealthy(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	tr := New()
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, simnet.HandlerFunc(func(_ simnet.Addr, msg simnet.Message) (simnet.Message, error) {
		if msg.Type == "slow" {
			<-block
		}
		return simnet.Message{Type: "ok"}, nil
	}))
	if _, err := tr.Call("client", addr, simnet.Message{Type: "fast"}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tr.CallCtx(ctx, "client", addr, simnet.Message{Type: "slow"})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("caller cancellation misreported as unreachable: %v", err)
	}

	// The same connection must still work: the canceled call only
	// deregistered its pending entry, it did not poison the socket.
	if _, err := tr.Call("client", addr, simnet.Message{Type: "fast"}); err != nil {
		t.Fatalf("call after cancellation: %v", err)
	}
	if got := tr.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d after cancellation, want 1", got)
	}
}

func TestPreCanceledCtxFailsFast(t *testing.T) {
	tr := New()
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.CallCtx(ctx, "client", "127.0.0.1:1", simnet.Message{Type: "ping"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("pre-canceled ctx misreported as unreachable: %v", err)
	}
}

func TestCallUnreachableAndNegativeCache(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithDialTimeout(200*time.Millisecond), WithTelemetry(reg))
	defer tr.Close()
	_, err := tr.Call("client", "127.0.0.1:1", simnet.Message{Type: "ping"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if tr.Alive("127.0.0.1:1") {
		t.Fatal("dead peer reported alive (negative cache miss)")
	}
	// Second call hits the negative cache, not the network.
	_, err = tr.Call("client", "127.0.0.1:1", simnet.Message{Type: "ping"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("cached err = %v, want ErrUnreachable", err)
	}
	if got := reg.Counter("tcp.errors.dead").Value(); got == 0 {
		t.Fatal("negative cache not consulted on repeat call")
	}
}

func TestCallTimeoutOnWedgedPeerWrapsUnreachable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	tr := New(WithCallTimeout(150 * time.Millisecond))
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		<-block
		return simnet.Message{}, nil
	}))
	start := time.Now()
	_, err := tr.Call("client", addr, simnet.Message{Type: "wedge"})
	if !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~150ms", elapsed)
	}
	// The wedged socket was retired.
	if got := tr.OpenConns(); got != 0 {
		t.Fatalf("OpenConns = %d after call timeout, want 0 (wedged conn retired)", got)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	tr := New()
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		return simnet.Message{}, errors.New("kaboom")
	}))
	_, err := tr.Call("client", addr, simnet.Message{Type: "ping"})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want remote kaboom", err)
	}
	if errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("handler error misreported as unreachable: %v", err)
	}
}

func TestUnregisterStopsServing(t *testing.T) {
	tr := New(WithDialTimeout(200*time.Millisecond), WithDeadPeerTTL(10*time.Millisecond))
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, echo())
	if _, err := tr.Call("client", addr, simnet.Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	tr.Unregister(addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := tr.Call("client", addr, simnet.Message{Type: "ping"})
		if errors.Is(err, simnet.ErrUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("call after Unregister: err = %v, want ErrUnreachable", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAliveLocalRemoteAndProbeWarmsPool(t *testing.T) {
	server := New()
	defer server.Close()
	client := New(WithDialTimeout(200 * time.Millisecond))
	defer client.Close()
	addr := freeAddrs(t, 1)[0]
	server.Register(addr, echo())
	if !server.Alive(addr) {
		t.Fatal("local listener not alive")
	}
	if !client.Alive(addr) {
		t.Fatal("remote peer not alive")
	}
	// The successful probe's connection stays pooled for the next call.
	if got := client.OpenConns(); got != 1 {
		t.Fatalf("OpenConns = %d after Alive probe, want 1 (probe warms pool)", got)
	}
	if !client.Alive(addr) {
		t.Fatal("second Alive (pooled fast path) returned false")
	}
}

func TestIdleReaperClosesQuietConns(t *testing.T) {
	tr := New(WithIdleTimeout(50 * time.Millisecond))
	defer tr.Close()
	addr := freeAddrs(t, 1)[0]
	tr.Register(addr, echo())
	if _, err := tr.Call("client", addr, simnet.Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.OpenConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle conn never reaped; OpenConns = %d", tr.OpenConns())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A new call after reaping dials fresh and succeeds.
	if _, err := tr.Call("client", addr, simnet.Message{Type: "ping"}); err != nil {
		t.Fatalf("call after reap: %v", err)
	}
}

func TestRegisterAfterCloseFails(t *testing.T) {
	tr := New()
	tr.Close()
	tr.Register("127.0.0.1:0", echo())
	if tr.LastError() == nil {
		t.Fatal("Register after Close did not record an error")
	}
	if _, err := tr.Call("a", "127.0.0.1:1", simnet.Message{Type: "ping"}); !errors.Is(err, simnet.ErrUnreachable) {
		t.Fatalf("Call after Close: err = %v, want ErrUnreachable", err)
	}
}

func TestCloseIsIdempotentAndFailsInflight(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	server := New()
	defer server.Close()
	client := New()
	addr := freeAddrs(t, 1)[0]
	server.Register(addr, simnet.HandlerFunc(func(simnet.Addr, simnet.Message) (simnet.Message, error) {
		<-block
		return simnet.Message{}, nil
	}))
	done := make(chan error, 1)
	go func() {
		_, err := client.Call("client", addr, simnet.Message{Type: "slow"})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	client.Close()
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call survived transport Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung through Close")
	}
}

// TestRaceSoak hammers one transport with hundreds of concurrent calls
// across several peers while the race detector watches. Payloads use both
// codec paths: strings travel as gob, registered protocol payloads as
// binary.
func TestRaceSoak(t *testing.T) {
	const peers, callers, callsPerCaller = 3, 24, 25
	reg := telemetry.NewRegistry()
	tr := New(WithTelemetry(reg))
	defer tr.Close()
	addrs := freeAddrs(t, peers)
	for _, a := range addrs {
		tr.Register(a, echo())
	}
	if err := tr.LastError(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < callsPerCaller; i++ {
				to := addrs[(c+i)%peers]
				want := fmt.Sprintf("c%d-i%d", c, i)
				reply, err := tr.Call("client", to, simnet.Message{Type: "soak", Payload: want, Size: len(want)})
				if err != nil {
					errs <- fmt.Errorf("caller %d call %d: %w", c, i, err)
					return
				}
				if reply.Payload.(string) != want {
					errs <- fmt.Errorf("caller %d call %d: got %v, want %s (cross-wired mux)", c, i, reply.Payload, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := int64(callers * callsPerCaller)
	if got := reg.Counter("tcp.calls.soak").Value(); got != total {
		t.Fatalf("tcp.calls.soak = %d, want %d", got, total)
	}
	if dials := reg.Counter("tcp.dials").Value(); dials > int64(peers*2) {
		t.Fatalf("tcp.dials = %d for %d peers — pool not reusing connections", dials, peers)
	}
}

// TestChordRingOverPooledTransport mirrors the nettransport ring test: the
// overlay's lookups run over pooled multiplexed sockets.
func TestChordRingOverPooledTransport(t *testing.T) {
	tr := New(WithDialTimeout(500 * time.Millisecond))
	defer tr.Close()
	addrs := freeAddrs(t, 8)
	ring := chord.NewRing(tr, chord.Config{FingerBits: 24})
	for _, a := range addrs {
		if _, err := ring.AddNode(string(a)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.LastError(); err != nil {
		t.Fatalf("listener failed: %v", err)
	}
	ring.Build()
	nodes := ring.Nodes()
	for i := 0; i < 20; i++ {
		key := chordid.HashKey(fmt.Sprintf("pooled-key-%d", i))
		got, hops, err := nodes[i%len(nodes)].Lookup(key)
		if err != nil {
			t.Fatalf("Lookup over pooled transport: %v", err)
		}
		want, _ := ring.Owner(key)
		if got.ID != want.ID() {
			t.Fatalf("lookup mismatch for %s", key.Short())
		}
		if hops < 0 {
			t.Fatal("negative hops")
		}
	}
}

// TestSpriteOverPooledTransport runs the full stack — share, search, learn —
// over pooled sockets, and checks the hot-path payloads actually traveled on
// the binary codec rather than the gob fallback.
func TestSpriteOverPooledTransport(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(WithDialTimeout(500*time.Millisecond), WithTelemetry(reg))
	defer tr.Close()
	addrs := freeAddrs(t, 6)
	ring := chord.NewRing(tr, chord.Config{FingerBits: 24})
	for _, a := range addrs {
		if _, err := ring.AddNode(string(a)); err != nil {
			t.Fatal(err)
		}
	}
	ring.Build()
	net, err := core.NewNetwork(ring, core.Config{InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6})
	if err != nil {
		t.Fatal(err)
	}

	owner := addrs[0]
	doc := corpus.NewDocument(index.DocID("pooled-doc"), map[string]int{
		"socket": 5, "frame": 3, "mux": 1,
	})
	if err := net.Share(owner, doc); err != nil {
		t.Fatalf("Share: %v", err)
	}
	rl, err := net.Search(addrs[3], []string{"socket"}, 5)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(rl) != 1 || rl[0].Doc != "pooled-doc" {
		t.Fatalf("search results = %v", rl)
	}
	if _, err := net.Search(addrs[4], []string{"socket", "mux"}, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := net.LearnAll(); err != nil {
		t.Fatalf("LearnAll: %v", err)
	}
	rl, err = net.Search(addrs[5], []string{"mux"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rl) != 1 {
		t.Fatalf("learned term not findable: %v", rl)
	}
	if bin := reg.Counter("tcp.codec.binary.bytes").Value(); bin == 0 {
		t.Fatal("no bytes traveled on the binary codec — registrations not in effect")
	}
}
