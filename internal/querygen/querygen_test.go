package querygen

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/spritedht/sprite/internal/central"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
)

func testCollection(t *testing.T) (*corpus.Collection, *central.System) {
	t.Helper()
	col, err := corpus.Synthesize(corpus.SynthConfig{
		NumDocs: 300, NumTopics: 5, VocabPerTopic: 60, BackgroundVocab: 200,
		DocLenMin: 60, DocLenMax: 150, NumQueries: 10, Seed: 42,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return col, central.New(col.Corpus)
}

func TestGenerateCounts(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{PerOriginal: 9, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// 10 originals × (1 + 9) = 100 queries, the paper's 63→630 scaled down.
	if len(g.Queries) != 100 {
		t.Fatalf("queries = %d, want 100", len(g.Queries))
	}
	if len(g.Origin) != 100 {
		t.Fatalf("origin map = %d entries", len(g.Origin))
	}
}

func TestGenerateOverlapRespected(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{PerOriginal: 5, Overlap: 0.7, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*corpus.Query{}
	for _, q := range col.Queries {
		byID[q.ID] = q
	}
	for _, q := range g.Queries {
		origID := g.Origin[q.ID]
		if q.ID == origID {
			continue // original
		}
		orig := byID[origID]
		shared := 0
		for _, term := range q.Terms {
			if orig.HasTerm(term) {
				shared++
			}
		}
		want := int(0.7*float64(len(orig.Terms)) + 0.5)
		if shared < want {
			t.Errorf("query %s shares %d terms with %s, want >= %d",
				q.ID, shared, origID, want)
		}
		if len(q.Terms) > len(orig.Terms) {
			t.Errorf("query %s grew beyond its original (%d > %d terms)",
				q.ID, len(q.Terms), len(orig.Terms))
		}
	}
}

func TestGenerateNoDuplicateTermsInQuery(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range g.Queries {
		seen := map[string]bool{}
		for _, term := range q.Terms {
			if seen[term] {
				t.Fatalf("query %s repeats term %q: %v", q.ID, term, q.Terms)
			}
			seen[term] = true
		}
	}
}

func TestGenerateRelevantDocsDerived(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*corpus.Query{}
	for _, q := range col.Queries {
		byID[q.ID] = q
	}
	derivedWithJudgments := 0
	for _, q := range g.Queries {
		if q.ID == g.Origin[q.ID] {
			continue
		}
		if len(q.Relevant) > 0 {
			derivedWithJudgments++
		}
		orig := byID[g.Origin[q.ID]]
		// Result-distribution property: derived judgment sets should be in
		// the same ballpark as the original's (not 10× larger).
		if len(q.Relevant) > 2*len(orig.Relevant)+5 {
			t.Errorf("query %s has %d judgments vs original's %d",
				q.ID, len(q.Relevant), len(orig.Relevant))
		}
	}
	if derivedWithJudgments == 0 {
		t.Fatal("no derived query received any relevance judgments")
	}
}

func TestGenerateSharedRelevantDocs(t *testing.T) {
	// Property (a) of §6.1: queries derived from the same original ought to
	// share some relevant documents with it.
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*corpus.Query{}
	for _, q := range col.Queries {
		byID[q.ID] = q
	}
	sharing, derived := 0, 0
	for _, q := range g.Queries {
		if q.ID == g.Origin[q.ID] {
			continue
		}
		derived++
		orig := byID[g.Origin[q.ID]]
		for d := range q.Relevant {
			if orig.Relevant[d] {
				sharing++
				break
			}
		}
	}
	if derived == 0 {
		t.Fatal("no derived queries")
	}
	if float64(sharing) < 0.5*float64(derived) {
		t.Fatalf("only %d/%d derived queries share a relevant doc with their original",
			sharing, derived)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	col, sys := testCollection(t)
	g1, err := Generate(col, sys, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(col, sys, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Queries) != len(g2.Queries) {
		t.Fatal("lengths differ")
	}
	for i := range g1.Queries {
		if !reflect.DeepEqual(g1.Queries[i].Terms, g2.Queries[i].Terms) {
			t.Fatalf("query %d terms differ across identical seeds", i)
		}
		if !reflect.DeepEqual(g1.Queries[i].Relevant, g2.Queries[i].Relevant) {
			t.Fatalf("query %d judgments differ across identical seeds", i)
		}
	}
}

func TestGenerateIDsNamespaced(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, q := range g.Queries {
		if seen[q.ID] {
			t.Fatalf("duplicate query ID %s", q.ID)
		}
		seen[q.ID] = true
		if q.ID != g.Origin[q.ID] && !strings.HasPrefix(q.ID, g.Origin[q.ID]+".") {
			t.Fatalf("derived ID %s not namespaced under %s", q.ID, g.Origin[q.ID])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	col, sys := testCollection(t)
	bad := []Config{
		{PerOriginal: -1},
		{Overlap: 1.5},
		{Overlap: -0.2},
		{TopSimilar: -3},
		{TopE: -1},
	}
	for i, cfg := range bad {
		// Force non-zero so FillDefaults doesn't mask the bad value.
		if _, err := Generate(col, sys, cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestZeroPerOriginalKeepsOnlyOriginals(t *testing.T) {
	col, sys := testCollection(t)
	// PerOriginal = 0 would be replaced by the default 9; use a config where
	// the caller explicitly wants only originals by setting PerOriginal to 0
	// after defaults — verify the default applies instead.
	g, err := Generate(col, sys, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Queries) != len(col.Queries)*10 {
		t.Fatalf("default PerOriginal should yield 10× queries, got %d", len(g.Queries))
	}
}

// docids builds a DocID slice from short names.
func docids(names ...string) []index.DocID {
	out := make([]index.DocID, len(names))
	for i, n := range names {
		out[i] = index.DocID(n)
	}
	return out
}

// TestAlignJudgmentsFigure3 replays the structure of the paper's Figure 3:
// some of Q's relevant documents reappear in RL′ (pass 1, circles matched by
// closest rank), and the remainder are replaced by the RL′ documents at the
// same ranks (pass 2, crosses).
func TestAlignJudgmentsFigure3(t *testing.T) {
	// RL: d0..d9, relevant docs of Q at ranks 1, 4, 7 (d1, d4, d7).
	rl := docids("d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9")
	origRel := map[index.DocID]bool{"d1": true, "d4": true, "d7": true}
	// RL′ contains d4 at rank 0 (a shared relevant doc) plus new docs.
	rlp := docids("d4", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "n9")

	got := alignJudgments(origRel, rl, rlp)

	// Pass 1: d4 is relevant to Q′ and marks the closest-ranked relevant doc
	// in RL (rank 0 in RL′ → closest of {1,4,7} is rank 1, i.e. d1).
	if !got["d4"] {
		t.Fatal("shared relevant doc d4 not carried over")
	}
	// Pass 2: the unmarked relevant docs in RL (d4@4, d7@7) map to RL′ ranks
	// 4 and 7 → n4 and n7.
	if !got["n4"] || !got["n7"] {
		t.Fatalf("rank-aligned crosses missing: %v", got)
	}
	// d1 was marked in pass 1, so RL′ rank 1 (n1) must NOT become relevant.
	if got["n1"] {
		t.Fatalf("marked doc's rank wrongly produced a cross: %v", got)
	}
	if len(got) != 3 {
		t.Fatalf("judgment count = %d, want 3 (same as original): %v", len(got), got)
	}
}

// TestAlignJudgmentsPreservesCount checks the generator's fairness property:
// the derived judgment set has the same cardinality as the original's
// within-top-E judgments whenever RL′ is deep enough.
func TestAlignJudgmentsPreservesCount(t *testing.T) {
	rl := docids("a", "b", "c", "d", "e", "f", "g", "h")
	rel := map[index.DocID]bool{"b": true, "d": true, "g": true}
	rlp := docids("x0", "b", "x2", "x3", "d", "x5", "x6", "x7")
	got := alignJudgments(rel, rl, rlp)
	if len(got) != 3 {
		t.Fatalf("judgments = %v, want 3 entries", got)
	}
	if !got["b"] || !got["d"] {
		t.Fatalf("shared docs lost: %v", got)
	}
}

func TestAlignJudgmentsShortRLPrime(t *testing.T) {
	// Relevant docs whose ranks exceed RL′'s length are dropped silently
	// (their ranks "will never be returned to users").
	rl := docids("a", "b", "c", "d", "e")
	rel := map[index.DocID]bool{"e": true} // rank 4
	rlp := docids("x", "y")                // too short to align rank 4
	got := alignJudgments(rel, rl, rlp)
	if len(got) != 0 {
		t.Fatalf("judgments = %v, want none", got)
	}
}

func TestAlignJudgmentsEmptyInputs(t *testing.T) {
	if got := alignJudgments(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty alignment = %v", got)
	}
	got := alignJudgments(map[index.DocID]bool{"a": true}, docids("a"), nil)
	if len(got) != 0 {
		t.Fatalf("no RL′: %v", got)
	}
}

// TestReplacementPicksUniformOverNeighbourPool is a seeded KS-style sanity
// check on Phase 1's distribution behaviour: a dropped term's replacement is
// drawn uniformly from its top-S Distribution-neighbour pool. Samples are
// restricted to derived queries with exactly one dropped term whose pool has
// no member colliding with the kept terms, so the expected law is exactly
// uniform over the S pool slots; the empirical CDF over pool ranks must then
// stay within a KS band of the uniform CDF. A biased RNG path (reusing the
// permutation, skewing toward pool head) fails this immediately.
func TestReplacementPicksUniformOverNeighbourPool(t *testing.T) {
	col, sys := testCollection(t)
	const S = 5
	g, err := Generate(col, sys, Config{PerOriginal: 400, Overlap: 0.7, TopSimilar: S, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*corpus.Query{}
	for _, q := range col.Queries {
		byID[q.ID] = q
	}
	counts := make([]int, S)
	samples := 0
	for _, q := range g.Queries {
		orig := byID[g.Origin[q.ID]]
		if q.ID == orig.ID {
			continue
		}
		var dropped, added []string
		inNew := map[string]bool{}
		for _, tm := range q.Terms {
			inNew[tm] = true
		}
		for _, tm := range orig.Terms {
			if !inNew[tm] {
				dropped = append(dropped, tm)
			}
		}
		origHas := map[string]bool{}
		for _, tm := range orig.Terms {
			origHas[tm] = true
		}
		for _, tm := range q.Terms {
			if !origHas[tm] {
				added = append(added, tm)
			}
		}
		if len(dropped) != 1 || len(added) != 1 {
			continue // ambiguous attribution
		}
		pool := col.Corpus.SimilarTerms(dropped[0], S)
		if len(pool) != S {
			continue
		}
		collides := false
		rank := -1
		for i, p := range pool {
			if origHas[p] && p != dropped[0] {
				collides = true
			}
			if p == added[0] {
				rank = i
			}
		}
		if collides || rank < 0 {
			continue // collision filtering skews the law; replacement outside pool impossible
		}
		counts[rank]++
		samples++
	}
	if samples < 300 {
		t.Fatalf("only %d clean samples; corpus/config no longer produce single-drop derivations", samples)
	}
	// One-sample KS test against the discrete uniform CDF. 1.63/sqrt(n) is
	// the 1% critical value; the run is seeded, so a pass is stable.
	cum, maxDev := 0.0, 0.0
	for i := 0; i < S; i++ {
		cum += float64(counts[i]) / float64(samples)
		dev := cum - float64(i+1)/float64(S)
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	if limit := 1.63 / math.Sqrt(float64(samples)); maxDev > limit {
		t.Fatalf("KS statistic %.4f exceeds %.4f: pool-rank counts %v over %d samples not uniform",
			maxDev, limit, counts, samples)
	}
}

// TestDerivedSetPreservesTermDistribution checks the paper's property (b) at
// the aggregate level: replacement terms are Distribution-neighbours of the
// terms they replace, so the derived set's mean log-Distribution must stay
// close to the original set's — the generator widens the query set without
// shifting its term-importance profile.
func TestDerivedSetPreservesTermDistribution(t *testing.T) {
	col, sys := testCollection(t)
	g, err := Generate(col, sys, Config{PerOriginal: 50, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	meanLogDist := func(qs []*corpus.Query, skipOriginals bool) float64 {
		sum, n := 0.0, 0
		for _, q := range qs {
			if skipOriginals && q.ID == g.Origin[q.ID] {
				continue
			}
			for _, tm := range q.Terms {
				if d := col.Corpus.Distribution(tm); d > 0 {
					sum += math.Log(float64(d))
					n++
				}
			}
		}
		if n == 0 {
			t.Fatal("no terms with positive Distribution")
		}
		return sum / float64(n)
	}
	origMean := meanLogDist(col.Queries, false)
	derivedMean := meanLogDist(g.Queries, true)
	if diff := math.Abs(derivedMean - origMean); diff > 0.35 {
		t.Fatalf("derived-set mean log-Distribution %.3f drifts %.3f from originals' %.3f",
			derivedMean, diff, origMean)
	}
}
