// Package querygen implements the SPRITE paper's query generator (§6.1).
// Benchmarks ship too few, too-dissimilar queries for a learning system to be
// evaluated, so the paper derives a larger query set from a judged base set
// under two properties: (a) queries with similar relevant documents share
// keywords, and (b) the derived set preserves the term distribution and
// result distribution of the original set.
//
// Phase 1 (term selection) builds each new query Q′ from an original Q by
// keeping an O-fraction of Q's terms (Q′₁ ⊂ Q) and replacing each dropped
// term with one of its top-S Distribution-neighbours
// (Distribution(t) = Freq(t)·Num(t)), injecting realistic noise.
//
// Phase 2 (relevant documents) derives Q′'s judgments by rank-aligning the
// centralized ranked lists RL (for Q) and RL′ (for Q′) within the top E, as
// illustrated by the paper's Figure 3.
package querygen

import (
	"fmt"
	"math/rand"

	"github.com/spritedht/sprite/internal/central"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/ir"
)

// Config holds the generator's tunables, named after the paper's symbols.
type Config struct {
	// PerOriginal is k, the number of new queries derived from each original
	// query. The paper uses 9 (63 originals → 630 queries total including
	// the originals).
	PerOriginal int
	// Overlap is O = |Q′₁|/|Q|, the fraction of original terms retained.
	// The paper's experiments use 0.7.
	Overlap float64
	// TopSimilar is S, the size of the Distribution-neighbour pool a
	// replacement term is drawn from. The paper sets S = 5.
	TopSimilar int
	// TopE is E, the ranked-list depth considered when deriving relevant
	// documents. The paper sets E = 1000.
	TopE int
	// Seed drives all random choices; same seed → identical query set.
	Seed int64
}

// FillDefaults replaces zero fields with the paper's settings.
func (c Config) FillDefaults() Config {
	if c.PerOriginal == 0 {
		c.PerOriginal = 9
	}
	if c.Overlap == 0 {
		c.Overlap = 0.7
	}
	if c.TopSimilar == 0 {
		c.TopSimilar = 5
	}
	if c.TopE == 0 {
		c.TopE = 1000
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.PerOriginal < 0:
		return fmt.Errorf("querygen: PerOriginal = %d, need >= 0", c.PerOriginal)
	case c.Overlap < 0 || c.Overlap > 1:
		return fmt.Errorf("querygen: Overlap = %v out of [0,1]", c.Overlap)
	case c.TopSimilar < 1:
		return fmt.Errorf("querygen: TopSimilar = %d, need >= 1", c.TopSimilar)
	case c.TopE < 1:
		return fmt.Errorf("querygen: TopE = %d, need >= 1", c.TopE)
	}
	return nil
}

// Generated is the output query set.
type Generated struct {
	// Queries contains the originals followed by the derived queries, each
	// with relevance judgments.
	Queries []*corpus.Query
	// Origin maps every query ID (including originals) to the ID of the
	// original query it derives from. The Fig. 4(c) experiment partitions
	// queries into groups along these lines.
	Origin map[string]string
}

// Generate derives the full query set from the judged originals in col,
// using sys (the centralized system over the same corpus) for Phase 2.
func Generate(col *corpus.Collection, sys *central.System, cfg Config) (*Generated, error) {
	cfg = cfg.FillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generated{Origin: make(map[string]string)}

	for _, orig := range col.Queries {
		g.Queries = append(g.Queries, orig)
		g.Origin[orig.ID] = orig.ID

		rl := sys.Rank(orig.Terms).Top(cfg.TopE)
		for i := 0; i < cfg.PerOriginal; i++ {
			nq := deriveTerms(orig, col.Corpus, cfg, rng, i)
			nq.Relevant = deriveRelevant(orig, nq, rl, sys, cfg)
			g.Queries = append(g.Queries, nq)
			g.Origin[nq.ID] = orig.ID
		}
	}
	return g, nil
}

// deriveTerms is Phase 1: keep ceil-rounded O·|Q| original terms, replace
// each dropped term with a random pick from its top-S Distribution
// neighbours.
func deriveTerms(orig *corpus.Query, c *corpus.Corpus, cfg Config, rng *rand.Rand, serial int) *corpus.Query {
	keep := int(cfg.Overlap*float64(len(orig.Terms)) + 0.5)
	if keep < 1 && len(orig.Terms) > 0 {
		keep = 1
	}
	if keep > len(orig.Terms) {
		keep = len(orig.Terms)
	}
	perm := rng.Perm(len(orig.Terms))
	kept := make([]string, 0, keep)
	dropped := make([]string, 0, len(orig.Terms)-keep)
	for i, pi := range perm {
		if i < keep {
			kept = append(kept, orig.Terms[pi])
		} else {
			dropped = append(dropped, orig.Terms[pi])
		}
	}

	inQuery := make(map[string]bool, len(orig.Terms))
	for _, t := range kept {
		inQuery[t] = true
	}
	terms := append([]string(nil), kept...)
	for _, old := range dropped {
		pool := c.SimilarTerms(old, cfg.TopSimilar)
		// Draw until we find a term not already in the query; fall back to
		// keeping the original term if the whole pool collides.
		replacement := old
		for _, j := range rng.Perm(len(pool)) {
			if !inQuery[pool[j]] {
				replacement = pool[j]
				break
			}
		}
		if inQuery[replacement] {
			continue // degenerate: drop the term entirely
		}
		inQuery[replacement] = true
		terms = append(terms, replacement)
	}

	return &corpus.Query{
		ID:    fmt.Sprintf("%s.g%d", orig.ID, serial),
		Terms: terms,
	}
}

// deriveRelevant is Phase 2, the Figure 3 procedure. rl is the original
// query's centralized ranked list truncated to the top E.
func deriveRelevant(orig, nq *corpus.Query, rl ir.RankedList, sys *central.System, cfg Config) map[index.DocID]bool {
	rlpDocs := sys.Rank(nq.Terms).Top(cfg.TopE).Docs()
	return alignJudgments(orig.Relevant, rl.Docs(), rlpDocs)
}

// alignJudgments implements the paper's Figure 3 rank alignment: given the
// original query's judgments and the two ranked lists (RL for the original
// query, RL′ for the derived one), it derives the new query's judgments.
//
// Pass 1: every document in RL′ that is relevant to Q becomes relevant to
// Q′, and the unmarked relevant document in RL with the most similar rank is
// marked as "accounted for". Pass 2: for each still-unmarked relevant
// document in RL, the document of RL′ at the same rank becomes relevant to
// Q′, preserving the rank distribution of the original judgments.
func alignJudgments(origRelevant map[index.DocID]bool, rlDocs, rlpDocs []index.DocID) map[index.DocID]bool {
	relevant := make(map[index.DocID]bool)
	marked := make(map[index.DocID]bool) // relevant docs of Q in RL already matched

	// Positions of Q's relevant documents within RL's top E. Relevant
	// documents ranked below E "will never be returned to users" and are
	// ignored, per the paper.
	relRanksInRL := make([]int, 0)
	for r, d := range rlDocs {
		if origRelevant[d] {
			relRanksInRL = append(relRanksInRL, r)
		}
	}

	// Pass 1.
	for r, d := range rlpDocs {
		if !origRelevant[d] {
			continue
		}
		relevant[d] = true
		best, bestDist := index.DocID(""), -1
		for _, rr := range relRanksInRL {
			cand := rlDocs[rr]
			if marked[cand] {
				continue
			}
			dist := rr - r
			if dist < 0 {
				dist = -dist
			}
			if bestDist < 0 || dist < bestDist {
				best, bestDist = cand, dist
			}
		}
		if bestDist >= 0 {
			marked[best] = true
		}
	}

	// Pass 2.
	for _, rr := range relRanksInRL {
		if marked[rlDocs[rr]] {
			continue
		}
		if rr < len(rlpDocs) {
			relevant[rlpDocs[rr]] = true
		}
	}
	return relevant
}
