// Block-compressed postings storage.
//
// A term's postings are held as a short sequence of immutable encoded blocks
// of ~blockTarget postings each, ordered by ascending doc ID with disjoint
// doc-ID ranges. Inside a block, doc IDs are front-coded (shared-prefix
// length + suffix) against the previous posting — the sorted synthetic and
// real IDs this system indexes share long prefixes, so the delta is a byte
// or two — owners are deduplicated into a per-block sorted, front-coded
// dictionary referenced by index, and the (tf, doclen) pair is packed into a
// single varint for the common small-frequency case. The result is 6–12
// bytes per posting where a []Posting slice costs ~65 (see Posting.MemSize),
// which is what lets an indexing peer hold a million-document shard without
// GC becoming the wall (ROADMAP: "Compressed postings + million-document
// peers").
//
// Block byte layout (all integers are encoding/binary varints):
//
//	uvarint n           posting count, n >= 1
//	uvarint m           owner-dictionary size, 1 <= m <= n
//	m owner entries     sorted ascending, front-coded against the previous:
//	    uvarint prefixLen, uvarint suffixLen, suffix bytes
//	n postings          ascending doc ID:
//	    uvarint prefixLen   doc bytes shared with the previous posting's doc
//	    uvarint suffixLen, suffix bytes
//	    uvarint ownerIdx    index into the owner dictionary (< m)
//	    uvarint packed      zigzag(DocLen)<<5 | min(zigzag(Freq), 31)
//	    [uvarint zigzag(Freq)]  present only when the packed low bits are 31
//	    uvarint sketchLen, sketch bytes   the document's serialized feature
//	        sketch (internal/sketch), empty when the deployment does not
//	        sketch — one byte of overhead per posting then
//
// Blocks are immutable after encoding: every mutation decodes the one
// affected block, rebuilds it, and installs a fresh block slice, so any
// Encoded snapshot or Cursor taken earlier keeps reading the old bytes
// untouched — the same copy-on-write snapshot contract the slice-backed
// index gave Postings callers.
//
// Decoding follows the wire package's safety discipline: every declared
// length is validated against the bytes actually remaining before it sizes
// an allocation, and malformed input surfaces as a sticky Cursor error —
// never a panic (FuzzPostingsBlock pins this).
package index

import (
	"encoding/binary"
	"fmt"
	"iter"
	"unsafe"
)

const (
	// blockTarget is the posting count a freshly split block aims for.
	blockTarget = 128
	// blockMax is the count at which an insert splits a block in two. Bulk
	// ascending loads instead seal a full last block and start a new one,
	// so sorted ingestion produces tightly packed blockMax-sized blocks
	// without ever re-encoding.
	blockMax = 2 * blockTarget
	// freqEscape marks a packed tf/doclen entry whose zigzag frequency did
	// not fit the 5 packed bits and follows as an explicit varint.
	freqEscape = 31
)

// block is one immutable run of encoded postings. first and last bound the
// doc IDs inside (inclusive); mutations use them to route to the single
// block a doc ID can live in.
type block struct {
	data        []byte
	n           int
	first, last DocID
}

// zigzag maps signed to unsigned the way encoding/binary's varints do, so
// the occasional nonsense negative field still round-trips.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// sharedPrefix returns the length of the longest common prefix of a and b.
func sharedPrefix(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// encodeBlock encodes postings (non-empty, ascending by Doc, distinct docs)
// into a fresh block.
func encodeBlock(ps []Posting) *block {
	// Owner dictionary: sorted distinct owners, insertion-sorted — blocks
	// are small and owners mostly pre-sorted, so this beats sort.Strings'
	// interface overhead on the bulk-load path.
	owners := make([]string, 0, 8)
	for _, p := range ps {
		i, ok := searchString(owners, p.Owner)
		if !ok {
			owners = append(owners, "")
			copy(owners[i+1:], owners[i:])
			owners[i] = p.Owner
		}
	}

	size := 4
	for _, o := range owners {
		size += len(o) + 2
	}
	for _, p := range ps {
		size += len(p.Doc) + len(p.Sketch) + 8
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	buf = binary.AppendUvarint(buf, uint64(len(owners)))
	prev := ""
	for _, o := range owners {
		pre := sharedPrefix(prev, o)
		buf = binary.AppendUvarint(buf, uint64(pre))
		buf = binary.AppendUvarint(buf, uint64(len(o)-pre))
		buf = append(buf, o[pre:]...)
		prev = o
	}
	prev = ""
	for _, p := range ps {
		doc := string(p.Doc)
		pre := sharedPrefix(prev, doc)
		buf = binary.AppendUvarint(buf, uint64(pre))
		buf = binary.AppendUvarint(buf, uint64(len(doc)-pre))
		buf = append(buf, doc[pre:]...)
		oi, _ := searchString(owners, p.Owner)
		buf = binary.AppendUvarint(buf, uint64(oi))
		zf, zl := zigzag(int64(p.Freq)), zigzag(int64(p.DocLen))
		if zf < freqEscape {
			buf = binary.AppendUvarint(buf, zl<<5|zf)
		} else {
			buf = binary.AppendUvarint(buf, zl<<5|freqEscape)
			buf = binary.AppendUvarint(buf, zf)
		}
		buf = binary.AppendUvarint(buf, uint64(len(p.Sketch)))
		buf = append(buf, p.Sketch...)
		prev = doc
	}
	return &block{data: buf, n: len(ps), first: ps[0].Doc, last: ps[len(ps)-1].Doc}
}

// searchString returns the insertion index of s in the ascending slice list
// and whether s is already present.
func searchString(list []string, s string) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == s
}

// Cursor streams decoded postings out of a sequence of encoded blocks in
// ascending doc-ID order. A cursor is a snapshot: the blocks it walks are
// immutable, so it stays valid across concurrent-looking index mutations
// (which install fresh blocks instead of touching these).
//
// Malformed block bytes stop the cursor and surface through Err; decoding
// never panics and never allocates more than the input could justify.
type Cursor struct {
	blocks []*block
	bi     int // next block to open

	// State of the currently open block.
	data      []byte
	off       int
	left      int // postings still to decode in this block
	ownerOff  int // offset of the owner dictionary (for lazy materialization)
	ownerCnt  int
	owners    []string // materialized on first Next; NextBytes leaves it nil
	lastOwner int      // owner index of the posting NextBytes just returned

	doc    []byte // scratch: the previous posting's doc bytes
	sketch []byte // the last posting's sketch bytes, aliasing the block data
	err    error
}

// Err returns the first decode error the cursor hit, if any. A truncated or
// corrupted block ends iteration early with Err set; well-formed input ends
// with Err nil.
func (c *Cursor) Err() error { return c.err }

func (c *Cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("index: "+format, args...)
	}
}

// uvarint reads one unsigned varint at the current offset. Nearly every
// field in a block — prefix/suffix lengths, owner indexes, packed tf/doclen —
// fits in one byte, so that case is decoded inline before falling back to
// binary.Uvarint.
func (c *Cursor) uvarint() (uint64, bool) {
	if c.off < len(c.data) {
		if b := c.data[c.off]; b < 0x80 {
			c.off++
			return uint64(b), true
		}
	}
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail("truncated or overlong uvarint at offset %d", c.off)
		return 0, false
	}
	c.off += n
	return v, true
}

// openBlock parses the next block's header and positions the cursor at its
// first posting. The owner dictionary is skipped, not materialized — only
// Next (which returns owner strings) pays for it.
func (c *Cursor) openBlock() bool {
	for c.left == 0 {
		if c.err != nil || c.bi >= len(c.blocks) {
			return false
		}
		b := c.blocks[c.bi]
		c.bi++
		c.data, c.off = b.data, 0
		c.owners = nil
		c.doc = c.doc[:0]
		n, ok := c.uvarint()
		if !ok {
			return false
		}
		// Each posting occupies >= 3 bytes, each owner >= 2; a count the
		// remaining bytes cannot hold is corruption, rejected before any
		// allocation is sized from it.
		if n == 0 || n > uint64(len(c.data)) {
			c.fail("block claims %d postings in %d bytes", n, len(c.data))
			return false
		}
		m, ok := c.uvarint()
		if !ok {
			return false
		}
		if m == 0 || m > n || m > uint64(len(c.data)-c.off) {
			c.fail("block claims %d owners for %d postings", m, n)
			return false
		}
		c.left, c.ownerCnt, c.ownerOff = int(n), int(m), c.off
		if !c.skipOwners() {
			return false
		}
	}
	return c.err == nil
}

// skipOwners advances past the owner dictionary without building strings.
func (c *Cursor) skipOwners() bool {
	for i := 0; i < c.ownerCnt; i++ {
		if _, ok := c.uvarint(); !ok {
			return false
		}
		suf, ok := c.uvarint()
		if !ok {
			return false
		}
		if suf > uint64(len(c.data)-c.off) {
			c.fail("owner suffix length %d exceeds %d remaining bytes", suf, len(c.data)-c.off)
			return false
		}
		c.off += int(suf)
	}
	return true
}

// materializeOwners decodes the current block's owner dictionary. Only the
// owner-carrying Next path needs it; scoring via NextBytes never does.
func (c *Cursor) materializeOwners() bool {
	save := c.off
	c.off = c.ownerOff
	owners := make([]string, 0, c.ownerCnt)
	prev := ""
	for i := 0; i < c.ownerCnt; i++ {
		pre, ok := c.uvarint()
		if !ok {
			break
		}
		suf, ok := c.uvarint()
		if !ok {
			break
		}
		if pre > uint64(len(prev)) || suf > uint64(len(c.data)-c.off) {
			c.fail("owner entry %d: prefix %d of %d, suffix %d of %d remaining",
				i, pre, len(prev), suf, len(c.data)-c.off)
			break
		}
		o := prev[:pre] + string(c.data[c.off:c.off+int(suf)])
		c.off += int(suf)
		owners = append(owners, o)
		prev = o
	}
	c.off = save
	c.owners = owners
	return c.err == nil
}

// NextBytes decodes the next posting without materializing strings: doc
// aliases the cursor's scratch buffer and is valid only until the next call.
// This is the scoring hot path — the accumulator probes its map with the raw
// bytes and only a first-seen doc ID is ever copied to a string. The four
// per-posting varints are decoded inline on local data/off copies (nearly
// all are single bytes); only a multi-byte value falls back to the uvarint
// method, which the compiler refuses to inline.
func (c *Cursor) NextBytes() (doc []byte, freq, docLen int, ok bool) {
	if c.left == 0 && !c.openBlock() {
		return nil, 0, 0, false
	}
	data, off := c.data, c.off

	var pre uint64
	if off < len(data) && data[off] < 0x80 {
		pre, off = uint64(data[off]), off+1
	} else {
		c.off = off
		if pre, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}
	var suf uint64
	if off < len(data) && data[off] < 0x80 {
		suf, off = uint64(data[off]), off+1
	} else {
		c.off = off
		if suf, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}
	if pre > uint64(len(c.doc)) || suf > uint64(len(data)-off) {
		c.fail("doc entry: prefix %d of %d, suffix %d of %d remaining",
			pre, len(c.doc), suf, len(data)-off)
		return nil, 0, 0, false
	}
	c.doc = append(c.doc[:pre], data[off:off+int(suf)]...)
	off += int(suf)

	var oi uint64
	if off < len(data) && data[off] < 0x80 {
		oi, off = uint64(data[off]), off+1
	} else {
		c.off = off
		if oi, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}
	if oi >= uint64(c.ownerCnt) {
		c.fail("owner index %d out of %d", oi, c.ownerCnt)
		return nil, 0, 0, false
	}
	c.lastOwner = int(oi)

	var packed uint64
	if off < len(data) && data[off] < 0x80 {
		packed, off = uint64(data[off]), off+1
	} else {
		c.off = off
		if packed, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}
	zf := packed & 31
	if zf == freqEscape {
		c.off = off
		if zf, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}

	var slen uint64
	if off < len(data) && data[off] < 0x80 {
		slen, off = uint64(data[off]), off+1
	} else {
		c.off = off
		if slen, ok = c.uvarint(); !ok {
			return nil, 0, 0, false
		}
		off = c.off
	}
	if slen > uint64(len(data)-off) {
		c.fail("sketch length %d exceeds %d remaining bytes", slen, len(data)-off)
		return nil, 0, 0, false
	}
	if slen == 0 {
		c.sketch = nil
	} else {
		c.sketch = data[off : off+int(slen) : off+int(slen)]
		off += int(slen)
	}

	c.off = off
	c.left--
	return c.doc, int(unzigzag(zf)), int(unzigzag(packed >> 5)), true
}

// SketchBytes returns the serialized feature sketch of the posting the last
// NextBytes/Next call produced, or nil when the posting carries none. The
// slice aliases the immutable block data, so unlike the doc bytes it stays
// valid across further cursor advances.
func (c *Cursor) SketchBytes() []byte { return c.sketch }

// Next decodes the next posting, owner included. It reports false at the end
// of the postings or on malformed input (check Err to tell the two apart).
func (c *Cursor) Next() (Posting, bool) {
	doc, freq, docLen, ok := c.NextBytes()
	if !ok {
		return Posting{}, false
	}
	if c.owners == nil && !c.materializeOwners() {
		return Posting{}, false
	}
	return Posting{Doc: DocID(doc), Owner: c.owners[c.lastOwner], Freq: freq, DocLen: docLen, Sketch: string(c.sketch)}, true
}

// Encoded is an immutable snapshot of one term's block-compressed postings.
// It is the unit that travels: indexing peers answer postings fetches with
// it, the postings cache accounts it at Size() encoded bytes, and the wire
// codec ships the block bytes as-is — the querier decodes lazily, one
// posting at a time, through Cursor or All. The zero value is an empty list.
type Encoded struct {
	blocks []*block
	n      int
	bytes  int
}

// Len returns the number of postings.
func (e Encoded) Len() int { return e.n }

// Size returns the encoded payload size in bytes — the footprint the cache
// and bandwidth accounting charge for this list.
func (e Encoded) Size() int { return e.bytes }

// NumBlocks returns the number of storage blocks backing the list.
func (e Encoded) NumBlocks() int { return len(e.blocks) }

// Cursor returns a streaming decoder positioned before the first posting.
func (e Encoded) Cursor() *Cursor { return &Cursor{blocks: e.blocks} }

// All iterates the postings in ascending doc-ID order. Malformed blocks end
// the sequence early (use Cursor directly to observe the error).
func (e Encoded) All() iter.Seq[Posting] {
	return func(yield func(Posting) bool) {
		c := e.Cursor()
		for p, ok := c.Next(); ok; p, ok = c.Next() {
			if !yield(p) {
				return
			}
		}
	}
}

// Slice decodes the full list into a fresh slice — the compatibility path
// for callers that genuinely need random access (snapshots, the chaos
// oracle). Nil when empty.
func (e Encoded) Slice() []Posting {
	if e.n == 0 {
		return nil
	}
	out := make([]Posting, 0, e.n)
	c := e.Cursor()
	for p, ok := c.Next(); ok; p, ok = c.Next() {
		out = append(out, p)
	}
	return out
}

// MarshalBinary encodes the block sequence as
//
//	uvarint blockCount, then per block: uvarint len(data), data bytes
//
// It also serves gob (getPostingsResp snapshots and any fallback-codec
// frame) via encoding.BinaryMarshaler, so every transport carries the same
// bytes.
func (e Encoded) MarshalBinary() ([]byte, error) {
	size := 1
	for _, b := range e.blocks {
		size += uvarintLen(uint64(len(b.data))) + len(b.data)
	}
	out := make([]byte, 0, size)
	out = binary.AppendUvarint(out, uint64(len(e.blocks)))
	for _, b := range e.blocks {
		out = binary.AppendUvarint(out, uint64(len(b.data)))
		out = append(out, b.data...)
	}
	return out, nil
}

// UnmarshalBinary decodes a MarshalBinary payload, fully validating every
// block — counts, lengths, owner references, and ascending doc order within
// and across blocks — before accepting it. Malformed input returns an error
// and leaves e empty; it never panics.
func (e *Encoded) UnmarshalBinary(data []byte) error {
	*e = Encoded{}
	off := 0
	count, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return fmt.Errorf("index: truncated block count")
	}
	off += k
	if count > uint64(len(data)-off) {
		return fmt.Errorf("index: %d blocks cannot fit in %d bytes", count, len(data)-off)
	}
	var (
		blocks []*block
		n      int
		bytes  int
		prev   DocID
	)
	for i := uint64(0); i < count; i++ {
		blen, k := binary.Uvarint(data[off:])
		if k <= 0 || blen > uint64(len(data)-off-k) {
			return fmt.Errorf("index: block %d: bad length", i)
		}
		off += k
		b := &block{data: data[off : off+int(blen) : off+int(blen)]}
		off += int(blen)
		if err := b.validate(); err != nil {
			return fmt.Errorf("index: block %d: %w", i, err)
		}
		if len(blocks) > 0 && b.first <= prev {
			return fmt.Errorf("index: block %d: doc %q not above previous block's %q", i, b.first, prev)
		}
		prev = b.last
		blocks = append(blocks, b)
		n += b.n
		bytes += len(b.data)
	}
	if off != len(data) {
		return fmt.Errorf("index: %d trailing bytes after %d blocks", len(data)-off, count)
	}
	e.blocks, e.n, e.bytes = blocks, n, bytes
	return nil
}

// validate walks the block once, filling in n/first/last and rejecting any
// structural corruption, including non-ascending or duplicate doc IDs.
func (b *block) validate() error {
	c := Cursor{blocks: []*block{b}}
	var (
		prev  DocID
		count int
	)
	for {
		doc, _, _, ok := c.NextBytes()
		if !ok {
			break
		}
		id := DocID(doc)
		if count > 0 && id <= prev {
			return fmt.Errorf("doc %q not above %q", id, prev)
		}
		if count == 0 {
			b.first = id
		}
		prev = id
		count++
	}
	if c.err != nil {
		return c.err
	}
	// A block claiming more postings than its bytes deliver is truncated;
	// bytes beyond the claimed postings are equally malformed.
	if count == 0 || c.left != 0 {
		return fmt.Errorf("block ends after %d of %d postings", count, count+c.left)
	}
	if c.off != len(b.data) {
		return fmt.Errorf("%d trailing bytes after %d postings", len(b.data)-c.off, count)
	}
	b.n, b.last = count, prev
	return nil
}

// MemSize returns the in-memory footprint of the posting as a []Posting
// element: the struct itself plus the string bytes it points at. This is the
// per-posting cost the block representation is measured against in
// BENCH_postings.json.
func (p Posting) MemSize() int {
	return int(unsafe.Sizeof(Posting{})) + len(p.Doc) + len(p.Owner) + len(p.Sketch)
}
