package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// drive applies the same pseudo-random add/remove/removeDoc sequence to both
// Store implementations.
func drive(seed int64, steps int, a, b Store) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		term := fmt.Sprintf("t%d", rng.Intn(12))
		doc := DocID(fmt.Sprintf("doc%04d", rng.Intn(400)))
		switch op := rng.Intn(10); {
		case op < 7:
			p := Posting{
				Doc:    doc,
				Owner:  fmt.Sprintf("peer%02d", rng.Intn(16)),
				Freq:   rng.Intn(40) + 1,
				DocLen: rng.Intn(200) + 1,
			}
			// Roughly half the postings carry a sketch, so the twin and
			// round-trip properties cover mixed sketched/unsketched blocks.
			if rng.Intn(2) == 0 {
				sk := make([]byte, rng.Intn(24)+1)
				rng.Read(sk)
				p.Sketch = string(sk)
			}
			a.Add(term, p)
			b.Add(term, p)
		case op < 9:
			ra, rb := a.Remove(term, doc), b.Remove(term, doc)
			if ra != rb {
				panic(fmt.Sprintf("Remove(%s,%s): plain=%v compressed=%v", term, doc, rb, ra))
			}
		default:
			ra, rb := a.RemoveDoc(doc), b.RemoveDoc(doc)
			if ra != rb {
				panic(fmt.Sprintf("RemoveDoc(%s): plain=%d compressed=%d", doc, rb, ra))
			}
		}
	}
}

// storesEqual compares the complete observable state of two Stores.
func storesEqual(t *testing.T, a, b Store) {
	t.Helper()
	if a.NumTerms() != b.NumTerms() || a.NumDocs() != b.NumDocs() || a.NumPostings() != b.NumPostings() {
		t.Fatalf("counts diverge: (%d,%d,%d) vs (%d,%d,%d)",
			a.NumTerms(), a.NumDocs(), a.NumPostings(),
			b.NumTerms(), b.NumDocs(), b.NumPostings())
	}
	at, bt := a.Terms(), b.Terms()
	if !reflect.DeepEqual(at, bt) {
		t.Fatalf("terms diverge: %v vs %v", at, bt)
	}
	for _, term := range at {
		if a.DocFreq(term) != b.DocFreq(term) || a.Has(term) != b.Has(term) {
			t.Fatalf("term %q: df %d vs %d", term, a.DocFreq(term), b.DocFreq(term))
		}
		as, bs := a.PostingsSlice(term), b.PostingsSlice(term)
		if !reflect.DeepEqual(as, bs) {
			t.Fatalf("term %q postings diverge:\n  %v\n  %v", term, as, bs)
		}
		// The iterator must serve exactly the slice, in the same order.
		var it []Posting
		for p := range a.All(term) {
			it = append(it, p)
		}
		if !reflect.DeepEqual(it, as) {
			t.Fatalf("term %q: All diverges from PostingsSlice:\n  %v\n  %v", term, it, as)
		}
	}
}

// Property: the compressed index is behavior-identical to the plain
// reference under random add/remove/removeDoc sequences — same counts, same
// terms, same postings in the same served order.
func TestCompressedPlainTwin(t *testing.T) {
	f := func(seed int64) bool {
		ix, px := NewInverted(), NewPlain()
		drive(seed, 600, ix, px)
		storesEqual(t, ix, px)
		// The encoded form must survive a marshal round trip unchanged.
		for _, term := range ix.Terms() {
			e := ix.Encoded(term)
			raw, err := e.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary(%q): %v", term, err)
			}
			var back Encoded
			if err := back.UnmarshalBinary(raw); err != nil {
				t.Fatalf("UnmarshalBinary(%q): %v", term, err)
			}
			if back.Len() != e.Len() || back.Size() != e.Size() ||
				!reflect.DeepEqual(back.Slice(), e.Slice()) {
				t.Fatalf("term %q: round trip diverged", term)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Heavy ascending bulk load: blocks must seal at blockMax and stay packed,
// and a cursor must stream every posting back in order.
func TestBulkLoadBlocks(t *testing.T) {
	ix := NewInverted()
	const n = 5 * blockMax
	for i := 0; i < n; i++ {
		ix.Add("t", post(fmt.Sprintf("doc%06d", i), i%9+1, 100))
	}
	e := ix.Encoded("t")
	if e.Len() != n {
		t.Fatalf("Len = %d, want %d", e.Len(), n)
	}
	if e.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d, want 5 (sealed at %d)", e.NumBlocks(), blockMax)
	}
	cur := e.Cursor()
	for i := 0; i < n; i++ {
		p, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor ended at %d of %d (err %v)", i, n, cur.Err())
		}
		if want := DocID(fmt.Sprintf("doc%06d", i)); p.Doc != want {
			t.Fatalf("posting %d: doc %q, want %q", i, p.Doc, want)
		}
	}
	if _, ok := cur.Next(); ok || cur.Err() != nil {
		t.Fatalf("cursor should end cleanly, err=%v", cur.Err())
	}
}

// Out-of-order inserts must split oversized blocks instead of growing them
// without bound.
func TestInsertSplitsBlocks(t *testing.T) {
	ix := NewInverted()
	// Interleave: evens first, then odds, so every odd insert lands inside
	// an existing block's range.
	for i := 0; i < 2*blockMax; i += 2 {
		ix.Add("t", post(fmt.Sprintf("doc%06d", i), 1, 100))
	}
	for i := 1; i < 2*blockMax; i += 2 {
		ix.Add("t", post(fmt.Sprintf("doc%06d", i), 1, 100))
	}
	e := ix.Encoded("t")
	if e.Len() != 2*blockMax {
		t.Fatalf("Len = %d", e.Len())
	}
	prev := DocID("")
	count := 0
	for p := range e.All() {
		if count > 0 && p.Doc <= prev {
			t.Fatalf("order violated at %d: %q after %q", count, p.Doc, prev)
		}
		prev = p.Doc
		count++
	}
	if count != 2*blockMax {
		t.Fatalf("iterated %d postings, want %d", count, 2*blockMax)
	}
	for _, b := range ix.lists["t"].blocks {
		if b.n > blockMax {
			t.Fatalf("block holds %d postings, max %d", b.n, blockMax)
		}
	}
}

// NextBytes is the zero-string scoring path; it must agree with Next.
func TestCursorNextBytes(t *testing.T) {
	ix := NewInverted()
	for i := 0; i < 300; i++ {
		ix.Add("t", post(fmt.Sprintf("doc%05d", i), i%7+1, 50+i%50))
	}
	want := ix.PostingsSlice("t")
	cur := ix.Cursor("t")
	for i := 0; ; i++ {
		doc, freq, docLen, ok := cur.NextBytes()
		if !ok {
			if i != len(want) {
				t.Fatalf("ended at %d of %d (err %v)", i, len(want), cur.Err())
			}
			break
		}
		w := want[i]
		if DocID(doc) != w.Doc || freq != w.Freq || docLen != w.DocLen {
			t.Fatalf("posting %d: (%s,%d,%d), want %+v", i, doc, freq, docLen, w)
		}
	}
}

// Sketches must survive the block codec byte-for-byte, via both the Posting
// field and the cursor's zero-copy SketchBytes accessor, across block
// boundaries and mixed sketched/unsketched postings.
func TestBlockSketchRoundTrip(t *testing.T) {
	ix := NewInverted()
	rng := rand.New(rand.NewSource(17))
	want := map[DocID]string{}
	const n = 3 * blockMax
	for i := 0; i < n; i++ {
		p := post(fmt.Sprintf("doc%06d", i), i%9+1, 100)
		if i%3 != 0 {
			sk := make([]byte, rng.Intn(130)+1)
			rng.Read(sk)
			p.Sketch = string(sk)
		}
		want[p.Doc] = p.Sketch
		ix.Add("t", p)
	}
	check := func(e Encoded, label string) {
		t.Helper()
		cur := e.Cursor()
		count := 0
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			if p.Sketch != want[p.Doc] {
				t.Fatalf("%s: doc %q sketch diverged", label, p.Doc)
			}
			if string(cur.SketchBytes()) != p.Sketch {
				t.Fatalf("%s: doc %q SketchBytes diverges from Posting.Sketch", label, p.Doc)
			}
			if p.Sketch == "" && cur.SketchBytes() != nil {
				t.Fatalf("%s: doc %q empty sketch not nil from SketchBytes", label, p.Doc)
			}
			count++
		}
		if cur.Err() != nil || count != n {
			t.Fatalf("%s: decoded %d of %d postings, err %v", label, count, n, cur.Err())
		}
	}
	e := ix.Encoded("t")
	check(e, "direct")
	raw, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Encoded
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	check(back, "round-tripped")
	// A republish that swaps the sketch must win, same as freq metadata.
	ix.Add("t", Posting{Doc: "doc000001", Owner: "peer-doc000001", Freq: 1, DocLen: 100, Sketch: "fresh"})
	if got := ix.PostingsSlice("t")[1].Sketch; got != "fresh" {
		t.Fatalf("republish kept stale sketch %q", got)
	}
}

// The zero Encoded must marshal and unmarshal cleanly — it is what an empty
// postings response carries.
func TestEncodedZeroRoundTrip(t *testing.T) {
	var e Encoded
	raw, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Encoded
	if err := back.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, back) {
		t.Fatalf("zero round trip: %+v vs %+v", e, back)
	}
	if back.Slice() != nil || back.Len() != 0 {
		t.Fatalf("zero Encoded decodes postings: %v", back.Slice())
	}
}

// FuzzPostingsBlock pins the decode safety contract: valid encodings round
// trip cleanly, and truncated, bit-flipped, or arbitrary garbage input never
// panics — it either decodes or returns an error.
func FuzzPostingsBlock(f *testing.F) {
	seedIx := NewInverted()
	for i := 0; i < 40; i++ {
		seedIx.Add("t", post(fmt.Sprintf("doc%04d", i*3), i%9, 100+i))
	}
	seed, _ := seedIx.Encoded("t").MarshalBinary()
	f.Add(seed, uint8(0), uint16(0))
	f.Add(seed, uint8(1), uint16(7))
	f.Add([]byte{}, uint8(0), uint16(0))
	f.Add([]byte{1, 5, 0, 0, 0, 0, 0}, uint8(0), uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, mode uint8, pos uint16) {
		mutated := append([]byte(nil), data...)
		switch mode % 3 {
		case 1: // truncate
			if len(mutated) > 0 {
				mutated = mutated[:int(pos)%len(mutated)]
			}
		case 2: // bit flip
			if len(mutated) > 0 {
				mutated[int(pos)%len(mutated)] ^= 1 << (pos % 8)
			}
		}
		var e Encoded
		if err := e.UnmarshalBinary(mutated); err != nil {
			return
		}
		// Accepted input must decode fully and consistently: the cursor
		// yields exactly Len postings in strictly ascending doc order with
		// no error, and re-marshaling reproduces the bytes.
		cur := e.Cursor()
		var prev DocID
		count := 0
		for p, ok := cur.Next(); ok; p, ok = cur.Next() {
			if count > 0 && p.Doc <= prev {
				t.Fatalf("accepted block out of order: %q after %q", p.Doc, prev)
			}
			prev = p.Doc
			count++
		}
		if cur.Err() != nil {
			t.Fatalf("validated payload failed to decode: %v", cur.Err())
		}
		if count != e.Len() {
			t.Fatalf("decoded %d postings, Len says %d", count, e.Len())
		}
		out, _ := e.MarshalBinary()
		if !reflect.DeepEqual(out, mutated) {
			t.Fatalf("re-marshal diverged:\n  in  %x\n  out %x", mutated, out)
		}
	})
}
