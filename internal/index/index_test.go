package index

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func post(doc string, freq, dlen int) Posting {
	return Posting{Doc: DocID(doc), Owner: "peer-" + doc, Freq: freq, DocLen: dlen}
}

func TestAddAndPostings(t *testing.T) {
	ix := NewInverted()
	ix.Add("chord", post("d2", 1, 50))
	ix.Add("chord", post("d1", 3, 100))
	got := ix.PostingsSlice("chord")
	if len(got) != 2 {
		t.Fatalf("postings = %v", got)
	}
	// Served order is ascending doc ID regardless of insertion order — the
	// ordering contract both Store implementations share.
	if got[0].Doc != "d1" || got[0].Freq != 3 || got[1].Doc != "d2" {
		t.Fatalf("postings = %+v, want ascending doc order", got)
	}
}

func TestAddIsIdempotentPerDoc(t *testing.T) {
	ix := NewInverted()
	ix.Add("term", post("d1", 3, 100))
	ix.Add("term", post("d1", 5, 120)) // republish with fresh metadata
	got := ix.PostingsSlice("term")
	if len(got) != 1 {
		t.Fatalf("republish duplicated the posting: %v", got)
	}
	if got[0].Freq != 5 || got[0].DocLen != 120 {
		t.Fatalf("republish did not refresh metadata: %+v", got[0])
	}
}

func TestEncodedSnapshotImmutable(t *testing.T) {
	ix := NewInverted()
	ix.Add("t", post("d1", 1, 10))
	ix.Add("t", post("d2", 2, 20))
	snap := ix.Encoded("t")

	// Mutations are copy-on-write at block granularity: a retained snapshot
	// must keep decoding the state at snapshot time while fresh reads see
	// the new state.
	ix.Add("t", post("d1", 999, 10)) // in-place block rewrite would corrupt snap
	if got := snap.Slice(); got[0].Freq != 1 {
		t.Fatalf("snapshot mutated by republish: %+v", got[0])
	}
	if got := ix.PostingsSlice("t")[0].Freq; got != 999 {
		t.Fatalf("fresh read missed republish: freq = %d", got)
	}

	snap = ix.Encoded("t")
	ix.Remove("t", "d1") // in-place splice would corrupt snap
	if got := snap.Slice(); len(got) != 2 || got[0].Doc != "d1" || got[1].Doc != "d2" {
		t.Fatalf("snapshot mutated by Remove: %v", got)
	}
	if got := ix.PostingsSlice("t"); len(got) != 1 || got[0].Doc != "d2" {
		t.Fatalf("fresh read missed Remove: %v", got)
	}

	snap = ix.Encoded("t")
	cur := snap.Cursor() // a cursor opened before the mutation must survive it too
	ix.RemoveDoc("d2")
	if got := snap.Slice(); len(got) != 1 || got[0].Doc != "d2" {
		t.Fatalf("snapshot mutated by RemoveDoc: %v", got)
	}
	if p, ok := cur.Next(); !ok || p.Doc != "d2" {
		t.Fatalf("pre-mutation cursor = %+v, %v", p, ok)
	}
	if got := ix.PostingsSlice("t"); got != nil {
		t.Fatalf("fresh read missed RemoveDoc: %v", got)
	}
}

func TestPostingsMissingTerm(t *testing.T) {
	ix := NewInverted()
	if got := ix.PostingsSlice("ghost"); got != nil {
		t.Fatalf("PostingsSlice(missing) = %v, want nil", got)
	}
	for range ix.All("ghost") {
		t.Fatal("All(missing) yielded a posting")
	}
	if e := ix.Encoded("ghost"); e.Len() != 0 || e.Size() != 0 {
		t.Fatalf("Encoded(missing) = %+v, want zero", e)
	}
}

func TestRemove(t *testing.T) {
	ix := NewInverted()
	ix.Add("t", post("d1", 1, 10))
	ix.Add("t", post("d2", 2, 20))
	if !ix.Remove("t", "d1") {
		t.Fatal("Remove reported not found")
	}
	if ix.Remove("t", "d1") {
		t.Fatal("second Remove reported found")
	}
	if got := ix.DocFreq("t"); got != 1 {
		t.Fatalf("DocFreq = %d after removal, want 1", got)
	}
	if !ix.Remove("t", "d2") {
		t.Fatal("Remove d2 failed")
	}
	if ix.Has("t") {
		t.Fatal("term with no postings still present")
	}
}

func TestRemoveDoc(t *testing.T) {
	ix := NewInverted()
	ix.Add("a", post("d1", 1, 10))
	ix.Add("b", post("d1", 2, 10))
	ix.Add("b", post("d2", 1, 20))
	if got := ix.RemoveDoc("d1"); got != 2 {
		t.Fatalf("RemoveDoc removed %d postings, want 2", got)
	}
	if ix.Has("a") {
		t.Fatal("term a should be gone")
	}
	if ix.DocFreq("b") != 1 {
		t.Fatal("term b should retain d2")
	}
	if ix.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", ix.NumDocs())
	}
}

func TestDocFreqIsIndexedDocumentFrequency(t *testing.T) {
	// DocFreq counts only documents that published the term, which is the
	// paper's n'_k — distinct from corpus-wide document frequency.
	ix := NewInverted()
	for i := 0; i < 7; i++ {
		ix.Add("popular", post(fmt.Sprintf("d%d", i), 1, 10))
	}
	if got := ix.DocFreq("popular"); got != 7 {
		t.Fatalf("DocFreq = %d, want 7", got)
	}
	if got := ix.DocFreq("unindexed"); got != 0 {
		t.Fatalf("DocFreq(missing) = %d, want 0", got)
	}
}

func TestTermsSorted(t *testing.T) {
	ix := NewInverted()
	for _, term := range []string{"zebra", "apple", "mango"} {
		ix.Add(term, post("d1", 1, 3))
	}
	got := ix.Terms()
	want := []string{"apple", "mango", "zebra"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Terms() = %v, want %v", got, want)
		}
	}
}

func TestCounts(t *testing.T) {
	ix := NewInverted()
	ix.Add("a", post("d1", 1, 10))
	ix.Add("a", post("d2", 1, 10))
	ix.Add("b", post("d1", 1, 10))
	if ix.NumTerms() != 2 || ix.NumDocs() != 2 || ix.NumPostings() != 3 {
		t.Fatalf("counts: %s", ix)
	}
	st := ix.Stats()
	if st.Terms != 2 || st.Docs != 2 || st.Postings != 3 || st.Blocks != 2 || st.EncodedBytes <= 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if bpp := st.BytesPerPosting(); bpp <= 0 || bpp > 64 {
		t.Fatalf("BytesPerPosting = %v", bpp)
	}
}

func TestNormFreq(t *testing.T) {
	p := post("d", 5, 100)
	if got := p.NormFreq(); got != 0.05 {
		t.Fatalf("NormFreq = %v, want 0.05", got)
	}
	zero := post("d", 5, 0)
	if got := zero.NormFreq(); got != 0 {
		t.Fatalf("NormFreq with zero length = %v, want 0", got)
	}
}

// WireSize must report exactly what the wire codec's posting layout ships:
// three length-prefixed strings (doc, owner, sketch) and two zig-zag varints.
func TestWireSizeVarintAccurate(t *testing.T) {
	for _, p := range []Posting{
		post("doc-1", 1, 10),
		post("a-rather-long-document-identifier", 200, 100000),
		{Doc: "", Owner: "", Freq: 0, DocLen: 0},
		{Doc: "d", Owner: "o", Freq: -3, DocLen: -1},
		{Doc: "d", Owner: "o", Freq: 2, DocLen: 9, Sketch: "\x01\x04abcd"},
		{Doc: "d", Owner: "o", Freq: 2, DocLen: 9, Sketch: string(make([]byte, 300))},
	} {
		var b []byte
		b = binary.AppendUvarint(b, uint64(len(p.Doc)))
		b = append(b, p.Doc...)
		b = binary.AppendUvarint(b, uint64(len(p.Owner)))
		b = append(b, p.Owner...)
		b = binary.AppendVarint(b, int64(p.Freq))
		b = binary.AppendVarint(b, int64(p.DocLen))
		b = binary.AppendUvarint(b, uint64(len(p.Sketch)))
		b = append(b, p.Sketch...)
		if got := p.WireSize(); got != len(b) {
			t.Fatalf("WireSize(%+v) = %d, want %d", p, got, len(b))
		}
	}
}

// The compressed representation must win big on doc-sorted lists with a
// small owner set — the shape real per-term postings have.
func TestCompressionRatio(t *testing.T) {
	ix := NewInverted()
	mem := 0
	for i := 0; i < 2000; i++ {
		p := Posting{
			Doc:    DocID(fmt.Sprintf("doc%06d", i)),
			Owner:  fmt.Sprintf("peer%02d", i%64),
			Freq:   i%15 + 1,
			DocLen: 80 + i%100,
		}
		ix.Add("t", p)
		mem += p.MemSize()
	}
	st := ix.Stats()
	if ratio := float64(mem) / float64(st.EncodedBytes); ratio < 4 {
		t.Fatalf("memory ratio = %.1fx (plain %dB vs encoded %dB), want >= 4x",
			ratio, mem, st.EncodedBytes)
	}
}

// Property: after any sequence of adds, NumPostings equals the sum of
// DocFreq over all terms, and every posting is retrievable.
func TestInvariantPostingsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewInverted()
		type key struct{ term, doc string }
		want := map[key]Posting{}
		for i := 0; i < 200; i++ {
			term := fmt.Sprintf("t%d", rng.Intn(20))
			doc := fmt.Sprintf("d%d", rng.Intn(30))
			p := Posting{Doc: DocID(doc), Owner: "o", Freq: rng.Intn(10) + 1, DocLen: 50}
			if rng.Intn(4) == 0 {
				ix.Remove(term, DocID(doc))
				delete(want, key{term, doc})
			} else {
				ix.Add(term, p)
				want[key{term, doc}] = p
			}
		}
		total := 0
		for _, term := range ix.Terms() {
			total += ix.DocFreq(term)
		}
		if total != ix.NumPostings() {
			return false
		}
		if total != len(want) {
			return false
		}
		for k, p := range want {
			if !slices.Contains(ix.PostingsSlice(k.term), p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
