package index

import (
	"reflect"
	"testing"

	"github.com/spritedht/sprite/internal/chordid"
)

func TestTermsInArc(t *testing.T) {
	ix := NewInverted()
	terms := []string{"alpha", "beta", "gamma", "delta"}
	for _, term := range terms {
		ix.Add(term, Posting{Doc: "d1", Freq: 1, DocLen: 10})
	}
	full := chordid.OwnerArc(chordid.HashKey("alpha"), chordid.HashKey("alpha"))
	if got := ix.TermsInArc(full); len(got) != len(terms) {
		t.Fatalf("full arc returned %v, want all %d terms", got, len(terms))
	}
	// A tight arc ending exactly at one term's key holds that term alone
	// (unless another term hashes into the two-point range, which these
	// fixed strings do not).
	h := chordid.HashKey("beta")
	tight := chordid.OwnerArc(h.Sub(chordid.FromUint64(1)), h)
	if got := ix.TermsInArc(tight); !reflect.DeepEqual(got, []string{"beta"}) {
		t.Fatalf("tight arc = %v, want [beta]", got)
	}
}

func TestTermDigest(t *testing.T) {
	a, b := NewInverted(), NewInverted()
	for _, ix := range []*Inverted{a, b} {
		ix.Add("x", Posting{Doc: "d1", Owner: "p0", Freq: 2, DocLen: 9})
		ix.Add("x", Posting{Doc: "d2", Owner: "p1", Freq: 1, DocLen: 4})
	}
	if a.TermDigest("x") != b.TermDigest("x") {
		t.Fatal("identical lists digest differently")
	}
	if a.TermDigest("absent") != 0 {
		t.Fatal("absent term digests nonzero")
	}
	b.Remove("x", "d2")
	if a.TermDigest("x") == b.TermDigest("x") {
		t.Fatal("diverged lists share a digest")
	}
	b.Add("x", Posting{Doc: "d2", Owner: "p1", Freq: 1, DocLen: 4})
	if a.TermDigest("x") != b.TermDigest("x") {
		t.Fatal("re-converged lists digest differently")
	}
	b.Add("x", Posting{Doc: "d3", Owner: "p2", Freq: 3, DocLen: 7})
	if a.TermDigest("x") == b.TermDigest("x") {
		t.Fatal("extra posting not reflected in digest")
	}
}

func TestArcDigests(t *testing.T) {
	ix := NewInverted()
	ix.Add("alpha", Posting{Doc: "d1", Freq: 1, DocLen: 3})
	ix.Add("beta", Posting{Doc: "d2", Freq: 2, DocLen: 5})
	full := chordid.OwnerArc(chordid.FromUint64(7), chordid.FromUint64(7))
	got := ix.ArcDigests(full)
	if len(got) != 2 || got["alpha"] == 0 || got["beta"] == 0 {
		t.Fatalf("ArcDigests = %v, want both terms with nonzero digests", got)
	}
	if got["alpha"] != ix.TermDigest("alpha") {
		t.Fatal("ArcDigests disagrees with TermDigest")
	}
}
