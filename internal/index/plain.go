package index

import (
	"fmt"
	"iter"
	"sort"
)

// Plain is the uncompressed reference implementation of Store: per-term
// []Posting slices kept in ascending doc-ID order, mutated copy-on-write.
// It exists for the property tests that pin the compressed Inverted to
// identical behavior, and as the baseline arm of the postings benchmark —
// same served order, same semantics, ~65 bytes per posting instead of ~8.
type Plain struct {
	lists    map[string][]Posting
	docs     map[DocID]bool
	postings int
}

// NewPlain returns an empty reference index.
func NewPlain() *Plain {
	return &Plain{
		lists: make(map[string][]Posting),
		docs:  make(map[DocID]bool),
	}
}

// Add inserts a posting for term, replacing any earlier posting for the same
// (term, doc) pair. The stored slice is never modified in place, so slices
// returned by PostingsSlice remain immutable snapshots.
func (px *Plain) Add(term string, p Posting) {
	px.docs[p.Doc] = true
	list := px.lists[term]
	// Ascending bulk-load fast path: a doc sorting after the current tail
	// appends without the O(n) copy, mirroring the compressed index's
	// seal-and-append path. Snapshot safety holds because existing elements
	// are never modified — an outstanding PostingsSlice has a fixed length,
	// and append only ever writes beyond it.
	if len(list) == 0 || list[len(list)-1].Doc < p.Doc {
		px.lists[term] = append(list, p)
		px.postings++
		return
	}
	i, found := searchPostings(list, p.Doc)
	nl := make([]Posting, len(list), len(list)+1)
	copy(nl, list)
	if found {
		nl[i] = p
	} else {
		nl = append(nl, Posting{})
		copy(nl[i+1:], nl[i:])
		nl[i] = p
		px.postings++
	}
	px.lists[term] = nl
}

// Remove deletes the posting for (term, doc) if present and reports whether
// it was found.
func (px *Plain) Remove(term string, doc DocID) bool {
	list := px.lists[term]
	i, found := searchPostings(list, doc)
	if !found {
		return false
	}
	px.postings--
	if len(list) == 1 {
		delete(px.lists, term)
		return true
	}
	nl := make([]Posting, 0, len(list)-1)
	nl = append(nl, list[:i]...)
	nl = append(nl, list[i+1:]...)
	px.lists[term] = nl
	return true
}

// RemoveDoc deletes every posting belonging to doc and returns the number
// removed.
func (px *Plain) RemoveDoc(doc DocID) int {
	removed := 0
	for term := range px.lists {
		if px.Remove(term, doc) {
			removed++
		}
	}
	delete(px.docs, doc)
	return removed
}

// All iterates term's postings in ascending doc-ID order over an immutable
// snapshot.
func (px *Plain) All(term string) iter.Seq[Posting] {
	list := px.lists[term]
	return func(yield func(Posting) bool) {
		for _, p := range list {
			if !yield(p) {
				return
			}
		}
	}
}

// PostingsSlice returns term's postings (nil if unindexed). The slice is an
// immutable copy-on-write snapshot, shared with the index — do not modify.
func (px *Plain) PostingsSlice(term string) []Posting { return px.lists[term] }

// DocFreq returns the number of documents whose postings list contains term.
func (px *Plain) DocFreq(term string) int { return len(px.lists[term]) }

// Has reports whether term has at least one posting.
func (px *Plain) Has(term string) bool { return len(px.lists[term]) > 0 }

// Terms returns all indexed terms in sorted order.
func (px *Plain) Terms() []string {
	out := make([]string, 0, len(px.lists))
	for t := range px.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumTerms returns the number of distinct indexed terms.
func (px *Plain) NumTerms() int { return len(px.lists) }

// NumDocs returns the number of distinct documents with at least one posting
// ever added.
func (px *Plain) NumDocs() int { return len(px.docs) }

// NumPostings returns the total number of postings across all terms.
func (px *Plain) NumPostings() int { return px.postings }

// String summarizes the index for logs.
func (px *Plain) String() string {
	return fmt.Sprintf("plain{terms=%d docs=%d postings=%d}",
		px.NumTerms(), px.NumDocs(), px.NumPostings())
}

var _ Store = (*Plain)(nil)
