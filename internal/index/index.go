// Package index provides the inverted-index structures shared by every
// retrieval system in this repository: the centralized baseline, eSearch,
// and SPRITE's indexing peers all store postings in the shape defined here.
//
// A posting carries exactly the metadata the SPRITE paper says an indexing
// peer keeps per term (§5.1): the owning document, the owner peer's address,
// the term's frequency in the document, and the document length. Document
// length travels with the posting so the querying peer can normalize term
// frequency and apply the Lee et al. similarity denominator without any
// extra round trip (§4).
//
// Two implementations share the Store interface. Inverted is the production
// store: per-term lists of immutable block-compressed postings (see block.go
// for the byte layout) mutated copy-on-write at block granularity, read
// through iterators and cursors so queries decode one posting at a time.
// Plain is the uncompressed reference the property and twin tests compare
// against. Both serve postings in ascending doc-ID order — the served order
// is part of the contract, because query-side float accumulation must fold
// identically whichever store produced the stream.
package index

import (
	"fmt"
	"iter"
	"sort"
)

// DocID identifies a document globally. Owner peers assign them; they are
// opaque to indexing peers.
type DocID string

// Posting is one inverted-list entry: term t occurs Freq times in document
// Doc of length DocLen, owned by the peer at Owner. Sketch optionally carries
// the document's serialized feature sketch (internal/sketch) so similarity
// queries can re-rank candidates without a round trip to the owner; it is
// empty when the deployment does not sketch. It is held as a string so
// Posting stays comparable — the twin and invariant tests compare postings
// wholesale.
type Posting struct {
	Doc    DocID
	Owner  string // owner peer address ("IP address" in the paper)
	Freq   int    // raw term frequency in the document
	DocLen int    // total number of terms in the document
	Sketch string // serialized sketch.Vector bytes, "" when absent
}

// NormFreq returns the length-normalized term frequency t_ik used in the
// TF·IDF weight (§4).
func (p Posting) NormFreq() float64 {
	if p.DocLen == 0 {
		return 0
	}
	return float64(p.Freq) / float64(p.DocLen)
}

// WireSize is the encoded size of the posting in bytes under the wire
// package's binary codec: three length-prefixed strings (doc, owner, sketch)
// and two zig-zag varints. Bandwidth telemetry and cache byte-accounting use
// it, so it must agree with what internal/wire actually ships.
func (p Posting) WireSize() int {
	return uvarintLen(uint64(len(p.Doc))) + len(p.Doc) +
		uvarintLen(uint64(len(p.Owner))) + len(p.Owner) +
		uvarintLen(zigzag(int64(p.Freq))) + uvarintLen(zigzag(int64(p.DocLen))) +
		uvarintLen(uint64(len(p.Sketch))) + len(p.Sketch)
}

// Store is the index API shared by the compressed production implementation
// (Inverted) and the uncompressed reference (Plain). Reads stream: All
// yields postings in ascending doc-ID order without materializing a decoded
// list; PostingsSlice is the compatibility helper for callers that need one.
type Store interface {
	Add(term string, p Posting)
	Remove(term string, doc DocID) bool
	RemoveDoc(doc DocID) int
	All(term string) iter.Seq[Posting]
	PostingsSlice(term string) []Posting
	DocFreq(term string) int
	Has(term string) bool
	Terms() []string
	NumTerms() int
	NumDocs() int
	NumPostings() int
}

// termList is one term's postings: a sequence of immutable encoded blocks
// with ascending, disjoint doc-ID ranges. The struct itself is immutable
// too — mutations build a fresh termList sharing the untouched blocks — so
// an Encoded snapshot is a plain three-word copy.
type termList struct {
	blocks []*block
	n      int // postings across all blocks
	bytes  int // encoded bytes across all blocks
}

// Inverted is an in-memory inverted index over block-compressed postings:
// term → immutable block sequence. The zero value is not ready to use;
// create with NewInverted.
type Inverted struct {
	lists    map[string]*termList
	docs     map[DocID]bool
	postings int
}

// NewInverted returns an empty index.
func NewInverted() *Inverted {
	return &Inverted{
		lists: make(map[string]*termList),
		docs:  make(map[DocID]bool),
	}
}

// searchBlocks returns the index of the first block whose last doc ID is
// >= doc — the only block that can contain doc, since ranges are disjoint
// and ascending. Returns len(blocks) when doc is beyond every block.
func searchBlocks(blocks []*block, doc DocID) int {
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].last < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchPostings returns the insertion index of doc in the ascending decoded
// slice and whether it is already present.
func searchPostings(ps []Posting, doc DocID) (int, bool) {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		if ps[mid].Doc < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(ps) && ps[lo].Doc == doc
}

// decodeBlock decodes one index-built block. Blocks produced by encodeBlock
// are well-formed by construction, so decoding cannot fail here.
func decodeBlock(b *block) []Posting {
	return Encoded{blocks: []*block{b}, n: b.n, bytes: len(b.data)}.Slice()
}

// rebuild re-encodes a decoded block's postings, splitting when an insert
// pushed the count past blockMax so blocks stay near blockTarget.
func rebuild(ps []Posting) []*block {
	if len(ps) > blockMax {
		h := len(ps) / 2
		return []*block{encodeBlock(ps[:h]), encodeBlock(ps[h:])}
	}
	return []*block{encodeBlock(ps)}
}

// spliced returns a fresh block slice with blocks[bi] replaced by repl
// (which may be empty, one, or two blocks). The input slice is never
// modified — snapshots hold it.
func spliced(blocks []*block, bi int, repl []*block) []*block {
	out := make([]*block, 0, len(blocks)-1+len(repl))
	out = append(out, blocks[:bi]...)
	out = append(out, repl...)
	return append(out, blocks[bi+1:]...)
}

// listStats recomputes a block slice's posting and byte totals.
func listStats(blocks []*block) (n, bytes int) {
	for _, b := range blocks {
		n += b.n
		bytes += len(b.data)
	}
	return n, bytes
}

// Add inserts a posting for term. Adding the same (term, doc) pair twice
// replaces the earlier posting — publishing is idempotent, as required for
// SPRITE's periodic index refresh (§3).
//
// Mutations are copy-on-write at block granularity: the one block whose
// doc-ID range covers p.Doc is decoded, rebuilt, and swapped into a fresh
// block slice. Blocks are never modified in place, so snapshots previously
// returned by Encoded (and cursors over them) stay valid and immutable.
// Ascending-doc insertion — the bulk-load order — seals full blocks and
// appends, so it never re-encodes existing data.
func (ix *Inverted) Add(term string, p Posting) {
	ix.docs[p.Doc] = true
	tl := ix.lists[term]
	if tl == nil {
		b := encodeBlock([]Posting{p})
		ix.lists[term] = &termList{blocks: []*block{b}, n: 1, bytes: len(b.data)}
		ix.postings++
		return
	}
	blocks := tl.blocks
	bi := searchBlocks(blocks, p.Doc)
	if bi == len(blocks) {
		if last := blocks[len(blocks)-1]; last.n >= blockMax {
			b := encodeBlock([]Posting{p})
			nb := make([]*block, len(blocks), len(blocks)+1)
			copy(nb, blocks)
			ix.lists[term] = &termList{blocks: append(nb, b), n: tl.n + 1, bytes: tl.bytes + len(b.data)}
			ix.postings++
			return
		}
		bi = len(blocks) - 1
	}
	ps := decodeBlock(blocks[bi])
	i, found := searchPostings(ps, p.Doc)
	if found {
		ps[i] = p
	} else {
		ps = append(ps, Posting{})
		copy(ps[i+1:], ps[i:])
		ps[i] = p
		ix.postings++
	}
	nb := spliced(blocks, bi, rebuild(ps))
	n, bytes := listStats(nb)
	ix.lists[term] = &termList{blocks: nb, n: n, bytes: bytes}
}

// Remove deletes the posting for (term, doc) if present and reports whether
// it was found. SPRITE's learning removes obsolete terms this way (§5.3).
func (ix *Inverted) Remove(term string, doc DocID) bool {
	tl := ix.lists[term]
	if tl == nil || !ix.removeFrom(term, tl, doc) {
		return false
	}
	return true
}

// removeFrom drops doc from term's list, installing the rebuilt list (or
// deleting the term when its last posting goes). Reports whether doc was
// present.
func (ix *Inverted) removeFrom(term string, tl *termList, doc DocID) bool {
	bi := searchBlocks(tl.blocks, doc)
	if bi == len(tl.blocks) || tl.blocks[bi].first > doc {
		return false
	}
	ps := decodeBlock(tl.blocks[bi])
	i, found := searchPostings(ps, doc)
	if !found {
		return false
	}
	ps = append(ps[:i], ps[i+1:]...)
	var repl []*block
	if len(ps) > 0 {
		repl = []*block{encodeBlock(ps)}
	}
	nb := spliced(tl.blocks, bi, repl)
	ix.postings--
	if len(nb) == 0 {
		delete(ix.lists, term)
		return true
	}
	n, bytes := listStats(nb)
	ix.lists[term] = &termList{blocks: nb, n: n, bytes: bytes}
	return true
}

// RemoveDoc deletes every posting belonging to doc (un-sharing a document).
// It returns the number of postings removed. Per-term cost is a block-range
// binary search; only terms that actually hold the doc decode anything.
func (ix *Inverted) RemoveDoc(doc DocID) int {
	removed := 0
	for term, tl := range ix.lists {
		if ix.removeFrom(term, tl, doc) {
			removed++
		}
	}
	delete(ix.docs, doc)
	return removed
}

// Encoded returns term's postings as an immutable compressed snapshot — the
// zero-copy form that is cached, shipped on the wire, and decoded lazily at
// the querier. The zero Encoded (empty list) is returned for unindexed
// terms.
func (ix *Inverted) Encoded(term string) Encoded {
	tl := ix.lists[term]
	if tl == nil {
		return Encoded{}
	}
	return Encoded{blocks: tl.blocks, n: tl.n, bytes: tl.bytes}
}

// All iterates term's postings in ascending doc-ID order, decoding one
// posting at a time. The sequence is a snapshot: mutations made while
// iterating are not observed.
func (ix *Inverted) All(term string) iter.Seq[Posting] {
	return ix.Encoded(term).All()
}

// Cursor returns a streaming decoder over term's postings — the pull-style
// counterpart to All for accumulator loops that interleave other work.
func (ix *Inverted) Cursor(term string) *Cursor {
	return ix.Encoded(term).Cursor()
}

// PostingsSlice decodes term's full postings list into a fresh slice (nil if
// the term is not indexed) — a compatibility helper for random-access
// callers; the query path streams through All or Cursor instead.
func (ix *Inverted) PostingsSlice(term string) []Posting {
	return ix.Encoded(term).Slice()
}

// DocFreq returns the number of documents in whose postings list term
// appears. For SPRITE's indexing peers this is the *indexed document
// frequency* n'_k of §4 — the count of documents that chose the term as a
// global index term, not the corpus-wide document frequency.
func (ix *Inverted) DocFreq(term string) int {
	tl := ix.lists[term]
	if tl == nil {
		return 0
	}
	return tl.n
}

// Has reports whether term has at least one posting.
func (ix *Inverted) Has(term string) bool { return ix.lists[term] != nil }

// Terms returns all indexed terms in sorted order.
func (ix *Inverted) Terms() []string {
	out := make([]string, 0, len(ix.lists))
	for t := range ix.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumTerms returns the number of distinct indexed terms.
func (ix *Inverted) NumTerms() int { return len(ix.lists) }

// NumDocs returns the number of distinct documents with at least one posting
// ever added (documents fully removed via RemoveDoc are not counted).
func (ix *Inverted) NumDocs() int { return len(ix.docs) }

// NumPostings returns the total number of postings across all terms — the
// index's storage footprint, the quantity SPRITE's selective indexing is
// designed to shrink (§1).
func (ix *Inverted) NumPostings() int { return ix.postings }

// Stats summarizes the index's storage footprint.
type Stats struct {
	Terms    int
	Docs     int
	Postings int
	// Blocks and EncodedBytes describe the compressed representation:
	// immutable block count and total encoded payload.
	Blocks       int
	EncodedBytes int
}

// BytesPerPosting returns the mean encoded bytes per posting (0 when empty).
func (s Stats) BytesPerPosting() float64 {
	if s.Postings == 0 {
		return 0
	}
	return float64(s.EncodedBytes) / float64(s.Postings)
}

// Stats walks the term map and returns the current storage footprint.
func (ix *Inverted) Stats() Stats {
	s := Stats{Terms: len(ix.lists), Docs: len(ix.docs), Postings: ix.postings}
	for _, tl := range ix.lists {
		s.Blocks += len(tl.blocks)
		s.EncodedBytes += tl.bytes
	}
	return s
}

// String summarizes the index for logs.
func (ix *Inverted) String() string {
	return fmt.Sprintf("inverted{terms=%d docs=%d postings=%d}",
		ix.NumTerms(), ix.NumDocs(), ix.NumPostings())
}

var _ Store = (*Inverted)(nil)
