// Package index provides the inverted-index structures shared by every
// retrieval system in this repository: the centralized baseline, eSearch,
// and SPRITE's indexing peers all store postings in the shape defined here.
//
// A posting carries exactly the metadata the SPRITE paper says an indexing
// peer keeps per term (§5.1): the owning document, the owner peer's address,
// the term's frequency in the document, and the document length. Document
// length travels with the posting so the querying peer can normalize term
// frequency and apply the Lee et al. similarity denominator without any
// extra round trip (§4).
package index

import (
	"fmt"
	"sort"
)

// DocID identifies a document globally. Owner peers assign them; they are
// opaque to indexing peers.
type DocID string

// Posting is one inverted-list entry: term t occurs Freq times in document
// Doc of length DocLen, owned by the peer at Owner.
type Posting struct {
	Doc    DocID
	Owner  string // owner peer address ("IP address" in the paper)
	Freq   int    // raw term frequency in the document
	DocLen int    // total number of terms in the document
}

// NormFreq returns the length-normalized term frequency t_ik used in the
// TF·IDF weight (§4).
func (p Posting) NormFreq() float64 {
	if p.DocLen == 0 {
		return 0
	}
	return float64(p.Freq) / float64(p.DocLen)
}

// WireSize is the simulated size of a posting in bytes (doc id, owner
// address, two varints), used for bandwidth accounting.
func (p Posting) WireSize() int {
	return len(p.Doc) + len(p.Owner) + 8
}

// Inverted is an in-memory inverted index: term → postings list. The zero
// value is not ready to use; create with NewInverted.
type Inverted struct {
	lists map[string][]Posting
	docs  map[DocID]bool
}

// NewInverted returns an empty index.
func NewInverted() *Inverted {
	return &Inverted{
		lists: make(map[string][]Posting),
		docs:  make(map[DocID]bool),
	}
}

// Add appends a posting for term. Adding the same (term, doc) pair twice
// replaces the earlier posting — publishing is idempotent, as required for
// SPRITE's periodic index refresh (§3).
//
// Mutations are copy-on-write: a list is never modified in place, so slices
// previously returned by Postings stay valid, immutable snapshots. (Plain
// append is safe too — it never touches the elements a snapshot can see.)
func (ix *Inverted) Add(term string, p Posting) {
	list := ix.lists[term]
	for i := range list {
		if list[i].Doc == p.Doc {
			nl := make([]Posting, len(list))
			copy(nl, list)
			nl[i] = p
			ix.lists[term] = nl
			ix.docs[p.Doc] = true
			return
		}
	}
	ix.lists[term] = append(list, p)
	ix.docs[p.Doc] = true
}

// Remove deletes the posting for (term, doc) if present and reports whether
// it was found. SPRITE's learning removes obsolete terms this way (§5.3).
func (ix *Inverted) Remove(term string, doc DocID) bool {
	list := ix.lists[term]
	for i := range list {
		if list[i].Doc == doc {
			if len(list) == 1 {
				delete(ix.lists, term)
				return true
			}
			nl := make([]Posting, 0, len(list)-1)
			nl = append(nl, list[:i]...)
			nl = append(nl, list[i+1:]...)
			ix.lists[term] = nl
			return true
		}
	}
	return false
}

// RemoveDoc deletes every posting belonging to doc (un-sharing a document).
// It returns the number of postings removed.
func (ix *Inverted) RemoveDoc(doc DocID) int {
	removed := 0
	for term, list := range ix.lists {
		hit := false
		for _, p := range list {
			if p.Doc == doc {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		kept := make([]Posting, 0, len(list)-1)
		for _, p := range list {
			if p.Doc == doc {
				removed++
			} else {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.lists, term)
		} else {
			ix.lists[term] = kept
		}
	}
	delete(ix.docs, doc)
	return removed
}

// Postings returns the postings list for term (nil if the term is not
// indexed). The returned slice is an immutable snapshot: callers may retain
// and iterate it freely but must not modify it. Because every mutation is
// copy-on-write, the snapshot is never changed underneath the caller — and
// the read path, the hottest in the system, costs no allocation.
func (ix *Inverted) Postings(term string) []Posting {
	return ix.lists[term]
}

// DocFreq returns the number of documents in whose postings list term
// appears. For SPRITE's indexing peers this is the *indexed document
// frequency* n'_k of §4 — the count of documents that chose the term as a
// global index term, not the corpus-wide document frequency.
func (ix *Inverted) DocFreq(term string) int { return len(ix.lists[term]) }

// Has reports whether term has at least one posting.
func (ix *Inverted) Has(term string) bool { return len(ix.lists[term]) > 0 }

// Terms returns all indexed terms in sorted order.
func (ix *Inverted) Terms() []string {
	out := make([]string, 0, len(ix.lists))
	for t := range ix.lists {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumTerms returns the number of distinct indexed terms.
func (ix *Inverted) NumTerms() int { return len(ix.lists) }

// NumDocs returns the number of distinct documents with at least one posting
// ever added (documents fully removed via RemoveDoc are not counted).
func (ix *Inverted) NumDocs() int { return len(ix.docs) }

// NumPostings returns the total number of postings across all terms — the
// index's storage footprint, the quantity SPRITE's selective indexing is
// designed to shrink (§1).
func (ix *Inverted) NumPostings() int {
	n := 0
	for _, list := range ix.lists {
		n += len(list)
	}
	return n
}

// String summarizes the index for logs.
func (ix *Inverted) String() string {
	return fmt.Sprintf("inverted{terms=%d docs=%d postings=%d}",
		ix.NumTerms(), ix.NumDocs(), ix.NumPostings())
}
