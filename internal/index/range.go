package index

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"github.com/spritedht/sprite/internal/chordid"
)

// Keyspace scans and digests over the block store. An indexing peer's
// authority is a keyspace arc, not a term list, so the repair layer needs to
// ask "which of your terms hash into this arc?" and "summarize them so a
// replica holder can cheaply tell whether its copy diverged" without
// decoding every block.

// TermsInArc returns, sorted, the terms whose DHT key (chordid.HashKey)
// falls inside arc. The scan is linear in the number of distinct terms but
// never touches postings blocks.
func (ix *Inverted) TermsInArc(arc chordid.Arc) []string {
	out := make([]string, 0, 8)
	for t := range ix.lists {
		if arc.ContainsKey(t) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// TermDigest returns a 64-bit digest of one term's posting list: an FNV-1a
// fold over (doc, owner, freq, doclen) in block order. Two stores hold the
// same list for a term iff their digests match (up to hash collision); the
// digest of an absent term is 0, so "missing" and "present" never compare
// equal (an FNV fold over any input is nonzero in practice, and the empty
// list is represented by absence).
func (ix *Inverted) TermDigest(term string) uint64 {
	tl := ix.lists[term]
	if tl == nil || tl.n == 0 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for p := range ix.All(term) {
		h.Write([]byte(p.Doc))
		h.Write([]byte{0})
		h.Write([]byte(p.Owner))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint32(buf[0:4], uint32(p.Freq))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(p.DocLen))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ArcDigests returns the per-term digests of every term in arc, keyed by
// term. It is the leaf layer the repair package's Merkle summaries fold
// over.
func (ix *Inverted) ArcDigests(arc chordid.Arc) map[string]uint64 {
	out := make(map[string]uint64)
	for _, t := range ix.TermsInArc(arc) {
		out[t] = ix.TermDigest(t)
	}
	return out
}
