module github.com/spritedht/sprite

go 1.23
