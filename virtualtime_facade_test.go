package sprite

import (
	"strings"
	"testing"
)

// driveSession shares, learns, and searches over one network, running under
// the virtual clock when the network has one. It returns the search results
// rendered as a comparable string.
func driveSession(t *testing.T, n *Network) string {
	t.Helper()
	var out string
	body := func() {
		docs := []struct{ id, text string }{
			{"doc-dht", "distributed hash tables route lookups in logarithmic hops"},
			{"doc-rank", "vector space ranking weighs terms by frequency"},
			{"doc-learn", "learning promotes queried terms into the index"},
		}
		peers := n.Peers()
		for i, d := range docs {
			if err := n.Share(peers[i%len(peers)], d.id, d.text); err != nil {
				t.Errorf("Share %s: %v", d.id, err)
				return
			}
		}
		if _, err := n.Learn(); err != nil {
			t.Errorf("Learn: %v", err)
			return
		}
		res, err := n.Search(peers[0], "ranking terms frequency", 5)
		if err != nil {
			t.Errorf("Search: %v", err)
			return
		}
		var b strings.Builder
		for _, r := range res {
			b.WriteString(r.DocID)
			b.WriteByte(' ')
		}
		out = b.String()
	}
	if clk := n.VirtualClock(); clk != nil {
		clk.Run(body)
	} else {
		body()
	}
	return out
}

func TestVirtualTimeOption(t *testing.T) {
	wall := newNet(t, Options{Peers: 8, Seed: 11})
	if wall.VirtualClock() != nil {
		t.Fatal("wall-clock network reports a virtual clock")
	}
	virt := newNet(t, Options{Peers: 8, Seed: 11, VirtualTime: true})
	clk := virt.VirtualClock()
	if clk == nil {
		t.Fatal("VirtualTime network has no virtual clock")
	}
	// The same seed must produce the same results regardless of clock — the
	// virtual clock changes how time passes, never what is retrieved.
	if w, v := driveSession(t, wall), driveSession(t, virt); w != v || w == "" {
		t.Fatalf("results moved with the clock: wall %q virtual %q", w, v)
	}
}

func TestVirtualTimeRejectsTCP(t *testing.T) {
	if _, err := New(Options{Peers: 4, VirtualTime: true, TCP: true}); err == nil {
		t.Fatal("VirtualTime+TCP accepted; virtual time cannot schedule a real network")
	}
}
