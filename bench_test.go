package sprite

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6.3) plus the supplementary experiments of DESIGN.md and
// micro-benchmarks of the hot paths. The figure benches print the paper's
// rows/series once (first iteration) and report the headline number as a
// custom metric, so `go test -bench=. -benchmem` regenerates the entire
// evaluation.
//
// The figure benches run the full pipeline — corpus synthesis, query
// generation, DHT construction, training, learning, measurement — per
// iteration, at a bench-sized scale (quarter of the default corpus) so the
// suite completes in minutes. Use cmd/spritebench for the full-scale runs.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/chordid"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/eval"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/querygen"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/telemetry"
	"github.com/spritedht/sprite/internal/text"
)

// benchConfig is the bench-sized experimental setup.
func benchConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Corpus = corpus.SynthConfig{NumDocs: 500, NumTopics: 6, NumQueries: 24, Seed: 17}
	cfg.QueryGen = querygen.Config{Seed: 23}
	cfg.Peers = 32
	return cfg
}

var printOnce sync.Map

// printTable emits a figure's table exactly once per benchmark name.
func printTable(name, table string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", table)
	}
}

// BenchmarkFig4a regenerates Figure 4(a): precision/recall ratio vs number
// of answers.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig4a", res.Table())
		b.ReportMetric(res.Sprite[3].Precision, "sprite-P@20-ratio")
		b.ReportMetric(res.ESearch[3].Precision, "esearch-P@20-ratio")
	}
}

// BenchmarkFig4bWithoutRepeats regenerates Figure 4(b), "w/o-r" workload.
func BenchmarkFig4bWithoutRepeats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4b(benchConfig(), eval.WithoutRepeats)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig4b-wor", res.Table())
		b.ReportMetric(res.Sprite[3].Precision, "sprite-P@20terms-ratio")
	}
}

// BenchmarkFig4bZipf regenerates Figure 4(b), "w-zipf" workload (slope 0.5).
func BenchmarkFig4bZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4b(benchConfig(), eval.WithZipf)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig4b-zipf", res.Table())
		b.ReportMetric(res.Sprite[3].Precision, "sprite-P@20terms-ratio")
	}
}

// BenchmarkFig4c regenerates Figure 4(c): robustness to query-pattern change.
func BenchmarkFig4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFig4c(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig4c", res.Table())
		b.ReportMetric(res.Sprite[5].Precision, "sprite-P-at-switch")
		b.ReportMetric(res.Sprite[9].Precision, "sprite-P-final")
	}
}

// BenchmarkChordLookup measures a single iterative DHT lookup on a 256-node
// ring (the chord-hops experiment's microscopic counterpart).
func BenchmarkChordLookup(b *testing.B) {
	net := simnet.New(1)
	ring := chord.NewRing(net, chord.Config{})
	if _, err := ring.AddNodes("b", 256); err != nil {
		b.Fatal(err)
	}
	ring.Build()
	nodes := ring.Nodes()
	keys := make([]chordid.ID, 1024)
	for i := range keys {
		keys[i] = chordid.HashKey(fmt.Sprintf("bench-key-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nodes[i%len(nodes)].Lookup(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordLookupTelemetry is BenchmarkChordLookup with a live registry
// installed at every layer, measuring the instrumentation overhead on the
// hottest path. Compare with BenchmarkChordLookup (telemetry disabled) to
// verify the disabled cost stays within noise and the enabled cost is small.
func BenchmarkChordLookupTelemetry(b *testing.B) {
	reg := telemetry.NewRegistry()
	net := simnet.New(1, simnet.WithTelemetry(reg))
	ring := chord.NewRing(net, chord.Config{Telemetry: reg})
	if _, err := ring.AddNodes("b", 256); err != nil {
		b.Fatal(err)
	}
	ring.Build()
	nodes := ring.Nodes()
	keys := make([]chordid.ID, 1024)
	for i := range keys {
		keys[i] = chordid.HashKey(fmt.Sprintf("bench-key-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := nodes[i%len(nodes)].Lookup(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChordHops runs the hop-count experiment table.
func BenchmarkChordHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunChordHops([]int{16, 64, 256, 1024}, 200, 5)
		if err != nil {
			b.Fatal(err)
		}
		printTable("chord-hops", res.Table())
		b.ReportMetric(res.AvgHops[len(res.AvgHops)-1], "avg-hops-1024")
	}
}

// BenchmarkInsertCost runs the selective-vs-full indexing cost experiment.
func BenchmarkInsertCost(b *testing.B) {
	cfg := benchConfig()
	cfg.Corpus.NumDocs = 200
	for i := 0; i < b.N; i++ {
		res, err := eval.RunInsertCost(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("insert-cost", res.Table())
		b.ReportMetric(res.MsgRatio, "full/selective-msgs")
	}
}

// BenchmarkScoreAblation runs the §5.3 score-function ablation.
func BenchmarkScoreAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunScoreAblation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation", res.Table())
		b.ReportMetric(res.Metrics[0].Precision, "paper-variant-P-ratio")
	}
}

// BenchmarkChurn runs the §7 failure/replication experiment.
func BenchmarkChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunChurn(benchConfig(), 0.25, 2)
		if err != nil {
			b.Fatal(err)
		}
		printTable("churn", res.Table())
		b.ReportMetric(res.NoReplication.Precision, "P-ratio-no-replication")
		b.ReportMetric(res.Replicated.Precision, "P-ratio-replicated")
	}
}

// BenchmarkExpansion runs the §7 query-expansion quality/cost experiment.
func BenchmarkExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunExpansion(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("expansion", res.Table())
		b.ReportMetric(res.Metrics[0].Precision, "P-ratio-plain")
		b.ReportMetric(res.Metrics[len(res.Metrics)-1].Precision, "P-ratio-expanded")
	}
}

// BenchmarkMaintenance runs the churn-recovery comparison (degraded vs owner
// refresh vs successor replication).
func BenchmarkMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunMaintenance(benchConfig(), 0.25, 2)
		if err != nil {
			b.Fatal(err)
		}
		printTable("maintenance", res.Table())
		b.ReportMetric(res.Degraded.Precision, "P-degraded")
		b.ReportMetric(res.AfterRefresh.Precision, "P-after-refresh")
	}
}

// BenchmarkLoadBalance runs the §7(b) load-distribution measurement.
func BenchmarkLoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunLoadBalance(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("load", res.Table())
		b.ReportMetric(res.PostingsGini, "postings-gini")
		b.ReportMetric(res.TrafficGini, "traffic-gini")
	}
}

// BenchmarkLearnCost runs the per-iteration maintenance-traffic measurement.
func BenchmarkLearnCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunLearnCost(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		printTable("learncost", res.Table())
		b.ReportMetric(res.MsgsPerDoc[len(res.MsgsPerDoc)-1], "msgs/doc/iter")
	}
}

// benchDeployment builds a trained deployment once for the micro-benches.
func benchDeployment(b *testing.B) (*eval.Env, *eval.Deployment) {
	b.Helper()
	cfg := benchConfig()
	env, err := eval.Setup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		b.Fatal(err)
	}
	if err := dep.InsertQueries(env.Train); err != nil {
		b.Fatal(err)
	}
	if err := dep.ShareAll(); err != nil {
		b.Fatal(err)
	}
	return env, dep
}

// BenchmarkSearch measures one distributed keyword query end-to-end
// (lookups, postings retrieval, consolidation, ranking).
func BenchmarkSearch(b *testing.B) {
	env, dep := benchDeployment(b)
	if err := dep.Learn(3); err != nil {
		b.Fatal(err)
	}
	s := dep.SpriteSearcher()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := env.Test[i%len(env.Test)]
		s(q.Terms, 20)
	}
}

// BenchmarkLearnDocument measures one learning iteration for one document
// (polls, Algorithm 1 fold, rank-list selection, publications).
func BenchmarkLearnDocument(b *testing.B) {
	_, dep := benchDeployment(b)
	docs := dep.Net.Documents()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Net.LearnDoc(docs[i%len(docs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShareDocument measures publishing one document's initial terms
// through the DHT.
func BenchmarkShareDocument(b *testing.B) {
	cfg := benchConfig()
	env, err := eval.Setup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := env.NewDeployment(cfg.Core)
	if err != nil {
		b.Fatal(err)
	}
	docs := env.Col.Corpus.Docs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := docs[i%len(docs)]
		clone := corpus.NewDocument(index.DocID(fmt.Sprintf("%s-clone%d", src.ID, i)), src.TF)
		owner := dep.Net.Peers()[i%cfg.Peers].Addr()
		if err := dep.Net.Share(owner, clone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPorterStem measures the stemmer on a representative vocabulary.
func BenchmarkPorterStem(b *testing.B) {
	words := []string{
		"relational", "conditional", "generalization", "oscillators",
		"characterization", "retrieval", "indexing", "effectiveness",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text.Stem(words[i%len(words)])
	}
}

// BenchmarkAnalyzerTerms measures the full text pipeline on a paragraph.
func BenchmarkAnalyzerTerms(b *testing.B) {
	const para = `SPRITE selects a small set of representative index terms
	per document and progressively tunes the selection by learning from past
	keyword queries in a distributed hash table network built over Chord.`
	var a text.Analyzer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Terms(para)
	}
}
