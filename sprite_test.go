package sprite

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func newNet(t *testing.T, opts Options) *Network {
	t.Helper()
	n, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewDefaults(t *testing.T) {
	n := newNet(t, Options{})
	if got := len(n.Peers()); got != 16 {
		t.Fatalf("default peers = %d, want 16", got)
	}
	for _, p := range n.Peers() {
		if !strings.HasPrefix(p, "peer") {
			t.Fatalf("peer name %q lacks default prefix", p)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Peers: -3}); err == nil {
		t.Fatal("negative peer count accepted")
	}
	if _, err := New(Options{Peers: 4, InitialTerms: 10, MaxIndexTerms: 5}); err == nil {
		t.Fatal("inconsistent term budget accepted")
	}
}

func TestShareAndSearch(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 2})
	err := n.Share("peer0", "doc-chord", "Chord is a scalable peer-to-peer lookup protocol for internet applications")
	if err != nil {
		t.Fatalf("Share: %v", err)
	}
	if err := n.Share("peer1", "doc-porter", "The Porter stemmer strips suffixes from English words"); err != nil {
		t.Fatalf("Share: %v", err)
	}
	res, err := n.Search("peer3", "chord lookup", 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) != 1 || res[0].DocID != "doc-chord" {
		t.Fatalf("Search = %+v, want doc-chord", res)
	}
	if res[0].Owner != "peer0" {
		t.Fatalf("Owner = %q, want peer0", res[0].Owner)
	}
	if res[0].Score <= 0 {
		t.Fatalf("Score = %v, want > 0", res[0].Score)
	}
}

func TestSearchAppliesTextPipeline(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 3})
	if err := n.Share("peer0", "d", "databases indexing retrieval systems experiments"); err != nil {
		t.Fatal(err)
	}
	// "Databases!" must stem to the same term as "databases".
	res, err := n.Search("peer2", "Databases!", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("stemmed query missed: %+v", res)
	}
}

func TestShareRejectsEmptyDocument(t *testing.T) {
	n := newNet(t, Options{Peers: 4})
	if err := n.Share("peer0", "empty", "the and of is"); err == nil {
		t.Fatal("stop-words-only document accepted")
	}
	if err := n.ShareTerms("peer0", "empty2", nil); err == nil {
		t.Fatal("empty term map accepted")
	}
}

func TestSearchRejectsEmptyQuery(t *testing.T) {
	n := newNet(t, Options{Peers: 4})
	if _, err := n.Search("peer0", "the of and", 5); err == nil {
		t.Fatal("stop-words-only query accepted")
	}
	if _, err := n.SearchTerms("peer0", nil, 5); err == nil {
		t.Fatal("empty terms accepted")
	}
}

func TestShareTermsBypassesPipeline(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 4})
	if err := n.ShareTerms("peer0", "raw", map[string]int{"presupplied": 3, "stems": 1}); err != nil {
		t.Fatal(err)
	}
	res, err := n.SearchTerms("peer1", []string{"presupplied"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != "raw" {
		t.Fatalf("SearchTerms = %+v", res)
	}
}

func TestLearnPromotesQueriedTerms(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 5, InitialTerms: 1, TermsPerIteration: 2, MaxIndexTerms: 4})
	// "protocol" dominates by frequency; "gossip" is rare but will be queried.
	err := n.ShareTerms("peer0", "d", map[string]int{"protocol": 10, "gossip": 1, "filler": 5})
	if err != nil {
		t.Fatal(err)
	}
	if terms, _ := n.IndexedTerms("d"); len(terms) != 1 || terms[0] != "protocol" {
		t.Fatalf("initial terms = %v", terms)
	}
	// A user's query pairs the indexed term with the rare one.
	if _, err := n.SearchTerms("peer3", []string{"protocol", "gossip"}, 5); err != nil {
		t.Fatal(err)
	}
	changes, err := n.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if changes == 0 {
		t.Fatal("Learn made no changes")
	}
	res, err := n.SearchTerms("peer4", []string{"gossip"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("gossip not findable after learning: %+v", res)
	}
}

func TestIndexedTermsUnknownDoc(t *testing.T) {
	n := newNet(t, Options{Peers: 4})
	if _, err := n.IndexedTerms("nope"); err == nil {
		t.Fatal("unknown doc accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 6})
	if err := n.Share("peer0", "d", "alpha beta gamma delta epsilon"); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Messages == 0 {
		t.Fatal("sharing generated no network traffic")
	}
	if s.Postings == 0 {
		t.Fatal("no postings stored")
	}
	if s.Peers != 8 {
		t.Fatalf("alive peers = %d, want 8", s.Peers)
	}
	if s.ByType["sprite.publish"] == 0 {
		t.Fatalf("no publish messages recorded: %v", s.ByType)
	}
	n.ResetStats()
	if n.Stats().Messages != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if n.Stats().Postings == 0 {
		t.Fatal("ResetStats cleared the index footprint")
	}
}

func TestFailoverWithReplication(t *testing.T) {
	n := newNet(t, Options{Peers: 12, Seed: 7, Replicas: 2})
	if err := n.ShareTerms("peer0", "d", map[string]int{"failsafe": 4, "redundant": 2}); err != nil {
		t.Fatal(err)
	}
	res, err := n.SearchTerms("peer5", []string{"failsafe"}, 5)
	if err != nil || len(res) != 1 {
		t.Fatalf("pre-failure search: %v %+v", err, res)
	}
	// Kill the indexing peer responsible for the term: find it by checking
	// which peer's failure makes the result disappear without replication.
	// With replication, the query must still succeed regardless of which
	// single peer dies — verify by failing each peer in turn.
	for _, victim := range n.Peers() {
		n.FailPeer(victim)
		got, err := n.SearchTerms("peer5", []string{"failsafe"}, 5)
		n.RecoverPeer(victim)
		if victim == "peer5" || victim == "peer0" {
			continue // querying peer itself or owner; not the failover path
		}
		if err != nil {
			t.Fatalf("search failed with %s down: %v", victim, err)
		}
		if len(got) != 1 {
			t.Fatalf("replicated entry unavailable with %s down", victim)
		}
	}
}

func TestStabilizeAfterFailure(t *testing.T) {
	n := newNet(t, Options{Peers: 10, Seed: 8})
	n.FailPeer("peer3")
	if rounds := n.Stabilize(50); rounds == 0 {
		t.Log("ring already converged") // acceptable: failure may not disturb successors
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []Result {
		n := newNet(t, Options{Peers: 8, Seed: 42})
		n.Share("peer0", "a", "storage engines write amplification compaction levels")
		n.Share("peer1", "b", "log structured merge trees compaction strategies")
		res, _ := n.Search("peer2", "compaction", 10)
		return res
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("result count differs across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnshareFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 12})
	if err := n.Share("peer0", "gone", "ephemeral document about vanishing data"); err != nil {
		t.Fatal(err)
	}
	res, _ := n.Search("peer1", "vanishing", 5)
	if len(res) != 1 {
		t.Fatalf("doc not findable before unshare: %v", res)
	}
	if err := n.Unshare("gone"); err != nil {
		t.Fatalf("Unshare: %v", err)
	}
	res, _ = n.Search("peer1", "vanishing", 5)
	if len(res) != 0 {
		t.Fatalf("doc still findable after unshare: %v", res)
	}
	if err := n.Unshare("gone"); err == nil {
		t.Fatal("double unshare succeeded")
	}
}

func TestRefreshFacadeHealsAfterFailure(t *testing.T) {
	n := newNet(t, Options{Peers: 12, Seed: 13})
	if err := n.ShareTerms("peer0", "doc", map[string]int{"resilient": 3, "entries": 1}); err != nil {
		t.Fatal(err)
	}
	// Find and fail the indexing peer for "resilient" by trying each peer.
	var victim string
	for _, p := range n.Peers() {
		if p == "peer0" {
			continue
		}
		n.FailPeer(p)
		res, _ := n.SearchTerms("peer0", []string{"resilient"}, 5)
		if len(res) == 0 {
			victim = p
			break
		}
		n.RecoverPeer(p)
	}
	if victim == "" {
		t.Skip("term hosted on the owner peer itself")
	}
	moved, err := n.Refresh()
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if moved == 0 {
		t.Fatal("Refresh moved nothing")
	}
	res, err := n.SearchTerms("peer0", []string{"resilient"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("doc not findable after refresh: %v", res)
	}
}

func TestJoinLeaveFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 21, Replicas: 2})
	docs := map[string]string{
		"dht":  "distributed hash tables route lookups in logarithmic hops",
		"ir":   "inverted indexes rank documents by term frequency statistics",
		"p2p":  "peer to peer overlays survive churn through replication",
		"text": "stemming and stop word removal normalize document text",
	}
	for id, body := range docs {
		if err := n.Share("peer0", id, body); err != nil {
			t.Fatal(err)
		}
	}
	before := len(n.Peers())
	if err := n.JoinPeer("newcomer"); err != nil {
		t.Fatalf("JoinPeer: %v", err)
	}
	if got := len(n.Peers()); got != before+1 {
		t.Fatalf("peer count after join = %d, want %d", got, before+1)
	}
	if err := n.JoinPeer("newcomer"); err == nil {
		t.Fatal("joining an existing peer succeeded")
	}
	// Every document stays findable with no refresh sweep: the join-time
	// handoff moved the newcomer's arc to it.
	for id := range docs {
		res, err := n.SearchTerms("peer1", termsOf(t, n, id), 5)
		if err != nil {
			t.Fatalf("search after join: %v", err)
		}
		if !containsDoc(res, id) {
			t.Fatalf("doc %s lost after join: %v", id, res)
		}
	}
	handoffs, err := n.LeavePeer("newcomer")
	if err != nil {
		t.Fatalf("LeavePeer: %v", err)
	}
	if got := len(n.Peers()); got != before {
		t.Fatalf("peer count after leave = %d, want %d", got, before)
	}
	_ = handoffs // may be zero if the newcomer's arc held no entries
	if _, err := n.LeavePeer("newcomer"); err == nil {
		t.Fatal("leaving a departed peer succeeded")
	}
	st := n.Repair()
	if st.Rounds == 0 {
		t.Fatal("Repair ran no shed rounds")
	}
	for id := range docs {
		res, err := n.SearchTerms("peer1", termsOf(t, n, id), 5)
		if err != nil {
			t.Fatalf("search after leave: %v", err)
		}
		if !containsDoc(res, id) {
			t.Fatalf("doc %s lost after leave: %v", id, res)
		}
	}
}

func termsOf(t *testing.T, n *Network, docID string) []string {
	t.Helper()
	terms, err := n.IndexedTerms(docID)
	if err != nil || len(terms) == 0 {
		t.Fatalf("IndexedTerms(%s): %v (%d terms)", docID, err, len(terms))
	}
	return terms[:1]
}

func containsDoc(res []Result, id string) bool {
	for _, r := range res {
		if r.DocID == id {
			return true
		}
	}
	return false
}

func TestSearchExpandedFacade(t *testing.T) {
	n := newNet(t, Options{Peers: 10, Seed: 14})
	n.Share("peer0", "go-doc", "goroutines channels scheduler preemption garbage collector runtime")
	n.Share("peer1", "rust-doc", "borrow checker lifetimes ownership zero cost abstractions runtime")
	res, expansion, err := n.SearchExpanded("peer2", "goroutines scheduler", 5, Expansion{Terms: 2})
	if err != nil {
		t.Fatalf("SearchExpanded: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].DocID != "go-doc" {
		t.Fatalf("top result = %v", res[0])
	}
	// Expansion terms must come from the feedback document.
	for _, term := range expansion {
		if term == "goroutin" || term == "schedul" {
			t.Fatalf("expansion repeated query term %q", term)
		}
	}
	if _, _, err := n.SearchExpanded("peer2", "the of", 5, Expansion{}); err == nil {
		t.Fatal("stop-word query accepted")
	}
}

func TestTCPModeEndToEnd(t *testing.T) {
	n, err := New(Options{Peers: 6, TCP: true, InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6})
	if err != nil {
		t.Fatalf("New TCP: %v", err)
	}
	defer n.Close()
	peers := n.Peers()
	if len(peers) != 6 {
		t.Fatalf("peers = %v", peers)
	}
	for _, p := range peers {
		if !strings.Contains(p, ":") {
			t.Fatalf("TCP peer name %q is not host:port", p)
		}
	}
	if err := n.Share(peers[0], "tcp-doc", "sockets frames and gob encoding over loopback"); err != nil {
		t.Fatalf("Share over TCP: %v", err)
	}
	res, err := n.Search(peers[3], "gob encoding", 5)
	if err != nil {
		t.Fatalf("Search over TCP: %v", err)
	}
	if len(res) != 1 || res[0].DocID != "tcp-doc" {
		t.Fatalf("results = %v", res)
	}
	if _, err := n.Learn(); err != nil {
		t.Fatalf("Learn over TCP: %v", err)
	}
	// Simulator-only capabilities must be inert, not crash.
	n.FailPeer(peers[1])
	n.RecoverPeer(peers[1])
	n.ResetStats()
	if s := n.Stats(); s.Postings == 0 || s.Peers != 6 {
		t.Fatalf("TCP stats = %+v", s)
	}
}

func TestHotTermDFOption(t *testing.T) {
	n := newNet(t, Options{Peers: 8, Seed: 21, InitialTerms: 2, HotTermDF: 3, TermsPerIteration: 2, MaxIndexTerms: 5})
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("doc%d", i)
		if err := n.ShareTerms("peer0", id, map[string]int{"everywhere": 4, "unique" + id: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Learn(); err != nil {
		t.Fatal(err)
	}
	// df must have been driven below the threshold.
	df := 0
	for i := 0; i < 6; i++ {
		terms, _ := n.IndexedTerms(fmt.Sprintf("doc%d", i))
		for _, term := range terms {
			if term == "everywhere" {
				df++
			}
		}
	}
	if df >= 3 {
		t.Fatalf("hot term still indexed by %d docs, want < 3", df)
	}
}

func TestSaveLoadFacade(t *testing.T) {
	build := func() *Network {
		return newNet(t, Options{Peers: 8, Seed: 33, InitialTerms: 2})
	}
	a := build()
	if err := a.Share("peer0", "persisted", "durable state surviving restarts via snapshots"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Search("peer2", "durable snapshots", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Learn(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	b := build()
	if err := b.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	ra, _ := a.Search("peer3", "durable", 5)
	rb, _ := b.Search("peer3", "durable", 5)
	if len(ra) != len(rb) {
		t.Fatalf("post-load search differs: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	ta, _ := a.IndexedTerms("persisted")
	tb, _ := b.IndexedTerms("persisted")
	if strings.Join(ta, ",") != strings.Join(tb, ",") {
		t.Fatalf("indexed terms differ: %v vs %v", ta, tb)
	}
}
