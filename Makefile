# Development targets. `make check` is the tier-1 gate (see ROADMAP.md):
# everything must pass before a change lands.

GO ?= go

.PHONY: check vet build test race bench cover coverage-gate smoke-churn smoke-parallel smoke-tcp smoke-scale smoke-postings smoke-repair smoke-similarity chaos-smoke fuzz-smoke vulncheck

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

cover:
	$(GO) test -cover ./...

# Fast fault-tolerance smoke: every churn/failover/resilience test under the
# race detector, without the rest of the suite.
smoke-churn:
	$(GO) test -race -run 'Churn|Resilien|Failover|Partial|TestDo|Backoff|Jitter|Classify|Budget' ./...

# Fast concurrency smoke: the query execution engine's determinism and race
# regression tests (sequential ≡ parallel), plus the fanout executor and
# accumulator arrival-order property tests, all under the race detector.
smoke-parallel:
	$(GO) test -race -run 'Parallel|Fanout|Map|ForEach|Accumulator|RankedTop|SleepingLatency' ./internal/fanout/ ./internal/core/ ./internal/ir/ ./internal/simnet/

# Virtual-time smoke: the event scheduler's own suite, the wall/virtual twin
# and same-seed determinism regressions, a unit-sized scale sweep, and the
# chaos matrix on the event clock — everything the 100k-peer experiments
# stand on, in well under a minute.
smoke-scale:
	$(GO) test -race ./internal/vtime/
	$(GO) test -run 'Virtual|TestRunScale' ./internal/eval/ ./internal/chaos/
	$(GO) test -run 'TestVirtualTime' .

# Real-socket transport smoke: the pooled multiplexed TCP transport (pool
# lifecycle, mux demux, reconnect, timeout taxonomy), the naive dial-per-RPC
# baseline, the binary codec, and the facade twin test that demands identical
# rankings from simnet and both TCP transports — all under the race detector.
smoke-tcp:
	$(GO) test -race ./internal/transport/ ./internal/nettransport/ ./internal/wire/ ./internal/fanout/
	$(GO) test -race -run 'TransportTwin|TCPTransportOption' .

# Compressed-postings smoke: the block codec's property tests (compressed ≡
# plain twin, marshal round-trip, cursor snapshot semantics), the streaming
# scoring bit-identity tests, and a small-tier run of the postings benchmark
# checking compression ratio and identical rankings end to end.
smoke-postings:
	$(GO) test -race ./internal/index/
	$(GO) test -race -run 'Stream|Merge|AccumulateKey' ./internal/ir/
	$(GO) run ./cmd/spritebench -postings-tiers 5000 -postings-queries 100 postings

# Peer-driven placement smoke: the repair package's digest property tests,
# the join/leave handoff + anti-entropy protocol suites in core, the facade
# and REPL join/leave paths (race detector on all of those), plus the
# mass-churn determinism soak and the stranded-entry mutation test.
smoke-repair:
	$(GO) test -race ./internal/repair/
	$(GO) test -race -run 'Handoff|Leave|Repair|AntiEntropy' ./internal/core/
	$(GO) test -race -run 'JoinLeave' . ./cmd/spritesim/
	$(GO) test -run 'MassChurnSoak|StrandedEntry' ./internal/chaos/

# Similarity-retrieval smoke: the sketch package's property suite (projection
# determinism, quantized-cosine bounds, codec round-trip), the end-to-end
# similarity search and twin determinism tests, and a small-tier run of the
# similarity benchmark comparing sketch-routed search against flooding.
smoke-similarity:
	$(GO) test -race ./internal/sketch/
	$(GO) test -race -run 'Similar' ./internal/core/ ./internal/ir/ ./internal/eval/ .
	$(GO) run ./cmd/spritebench -similarity-tiers 1000 -similarity-peers 128 -similarity-queries 20 similarity

# Deterministic whole-system smoke: the chaos harness on its fixed seed set.
# Violations print a shrunk repro and a `-chaos.seed=N` replay recipe (see
# DESIGN.md § Correctness tooling). Kept under a minute for CI.
chaos-smoke:
	$(GO) test ./internal/chaos -run TestChaos -chaos.steps=150 -timeout 5m

# Native Go fuzz targets, 10s each: the text pipeline (never panic, stemming
# idempotent) and the wire codec (payload round-trip, garbage never panics).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzStem -fuzztime=10s ./internal/text
	$(GO) test -run=NONE -fuzz=FuzzTokenize -fuzztime=10s ./internal/text
	$(GO) test -run=NONE -fuzz=FuzzAnalyzerTerms -fuzztime=10s ./internal/text
	$(GO) test -run=NONE -fuzz=FuzzCodec -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzBinaryProtocol -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzPostingsBlock -fuzztime=10s ./internal/index
	$(GO) test -run=NONE -fuzz='FuzzSketch$$' -fuzztime=10s ./internal/sketch
	$(GO) test -run=NONE -fuzz=FuzzSketchCodec -fuzztime=10s ./internal/sketch

# Coverage floor on the invariant-bearing packages. The threshold guards the
# correctness tooling itself: chaos checkers or core introspection that rot
# uncovered would silently stop guarding everything else.
COVER_PKGS = ./internal/core ./internal/ir ./internal/index ./internal/chaos ./internal/transport ./internal/wire ./internal/vtime ./internal/repair ./internal/sketch
COVER_MIN  = 70

coverage-gate:
	$(GO) test -coverprofile=cover.out -coverpkg=$(shell echo $(COVER_PKGS) | tr ' ' ',') $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_MIN))}" || { echo "coverage $$total% below $(COVER_MIN)%"; exit 1; }

# Known-vulnerability scan. Advisory: requires network access to the vuln DB,
# so CI runs it non-blocking and local runs may skip it offline.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./... || true
