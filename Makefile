# Development targets. `make check` is the tier-1 gate (see ROADMAP.md):
# everything must pass before a change lands.

GO ?= go

.PHONY: check vet build test race bench cover smoke-churn smoke-parallel vulncheck

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

cover:
	$(GO) test -cover ./...

# Fast fault-tolerance smoke: every churn/failover/resilience test under the
# race detector, without the rest of the suite.
smoke-churn:
	$(GO) test -race -run 'Churn|Resilien|Failover|Partial|TestDo|Backoff|Jitter|Classify|Budget' ./...

# Fast concurrency smoke: the query execution engine's determinism and race
# regression tests (sequential ≡ parallel), plus the fanout executor and
# accumulator-merge property tests, all under the race detector.
smoke-parallel:
	$(GO) test -race -run 'Parallel|Fanout|Map|ForEach|AccumulatorMerge|SleepingLatency' ./internal/fanout/ ./internal/core/ ./internal/ir/ ./internal/simnet/

# Known-vulnerability scan. Advisory: requires network access to the vuln DB,
# so CI runs it non-blocking and local runs may skip it offline.
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./... || true
