# Development targets. `make check` is the tier-1 gate (see ROADMAP.md):
# everything must pass before a change lands.

GO ?= go

.PHONY: check vet build test race bench cover

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

cover:
	$(GO) test -cover ./...
