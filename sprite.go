// Package sprite is a learning-based text retrieval system for DHT networks,
// reproducing SPRITE (Selective PRogressive Index Tuning by Examples; Li,
// Jagadish, Tan — ICDE 2007).
//
// A Network simulates a set of peers organized in a Chord ring. Peers share
// documents: instead of publishing every term into the distributed index —
// prohibitively expensive in a P2P system — each document is indexed under a
// small, bounded set of representative terms. The set starts as the
// document's most frequent terms and is then progressively tuned: indexing
// peers remember recent queries, and each learning iteration pulls the
// queries relevant to a document back to its owner, which promotes the terms
// users actually search with and demotes terms nobody queries.
//
// Quick start:
//
//	net, _ := sprite.New(sprite.Options{Peers: 16})
//	net.Share("peer0", "doc-1", "Chord is a scalable peer-to-peer lookup service")
//	net.Share("peer1", "doc-2", "Porter stemming strips suffixes from English words")
//	results, _ := net.Search("peer2", "peer-to-peer lookup", 10)
//	net.Learn() // tune indexes from the queries seen so far
//
// Everything runs in-process on a simulated, message-metered network; see
// Stats for the traffic the protocol generated.
package sprite

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/spritedht/sprite/internal/cache"
	"github.com/spritedht/sprite/internal/chord"
	"github.com/spritedht/sprite/internal/core"
	"github.com/spritedht/sprite/internal/corpus"
	"github.com/spritedht/sprite/internal/index"
	"github.com/spritedht/sprite/internal/nettransport"
	"github.com/spritedht/sprite/internal/simnet"
	"github.com/spritedht/sprite/internal/sketch"
	"github.com/spritedht/sprite/internal/text"
	"github.com/spritedht/sprite/internal/transport"
	"github.com/spritedht/sprite/internal/vtime"
)

// Sentinel errors for programmatic handling with errors.Is. They are shared
// with the core layer, so errors surfaced by either compare equal.
var (
	// ErrNoSuchPeer marks an operation naming a peer that is not part of the
	// network.
	ErrNoSuchPeer = core.ErrNoSuchPeer
	// ErrNoSuchDoc marks an operation naming a document that is not shared.
	ErrNoSuchDoc = core.ErrNoSuchDoc
	// ErrPartialResults marks a context-first search that lost one or more
	// query terms to unreachable holders and ranked the remainder (§7's
	// degraded mode made visible). Inspect the per-term causes with
	// errors.As(err, *(*PartialError)).
	ErrPartialResults = core.ErrPartialResults
	// ErrSketchDisabled marks a similarity query against a network built
	// without Options.Sketch.Enabled.
	ErrSketchDisabled = core.ErrSketchDisabled
)

// PartialError reports which query terms a degraded search dropped and why.
// It satisfies errors.Is(err, ErrPartialResults).
type PartialError = core.PartialError

// TermFailure is one dropped term and the final error that felled it.
type TermFailure = core.TermFailure

// Options configures a Network. The zero value gives the paper's defaults:
// 16 peers, 5 initial terms per document, 5 new terms per learning
// iteration, at most 30 indexed terms, no replication.
type Options struct {
	// Peers is the number of peers in the ring (default 16).
	Peers int
	// PeerPrefix names peers "<prefix>0".."<prefix>N-1" (default "peer").
	PeerPrefix string
	// InitialTerms is the number of most-frequent terms published when a
	// document is shared (default 5).
	InitialTerms int
	// TermsPerIteration bounds how many index terms one learning iteration
	// may add or replace per document (default 5).
	TermsPerIteration int
	// MaxIndexTerms caps a document's global index terms (default 30).
	MaxIndexTerms int
	// HistoryCap bounds each indexing peer's cached query history (default
	// 4096 queries).
	HistoryCap int
	// Replicas is the number of successor peers each index entry is
	// replicated to, for fault tolerance (default 0 = off).
	Replicas int
	// Seed makes all simulation randomness reproducible (default 1).
	Seed int64
	// KeepStopWords disables stop-word removal in the text pipeline.
	KeepStopWords bool
	// NoStemming disables Porter stemming in the text pipeline.
	NoStemming bool
	// TCP runs the peers over real loopback TCP sockets instead of the
	// in-process simulator. Peer names become their "host:port" addresses.
	// Traffic statistics, FailPeer/RecoverPeer, and per-message accounting
	// are simulator capabilities and are inert in TCP mode; everything else
	// — sharing, searching, learning, expansion, replication, refresh —
	// behaves identically.
	TCP bool
	// TCPTransport selects the socket layer when TCP is set: "pooled" (the
	// default) multiplexes calls over pooled per-peer connections with the
	// binary wire codec, "dial" opens one gob-framed connection per RPC
	// (the naive baseline internal/nettransport). Rankings are
	// byte-identical across both; see the tcp benchmark for the cost
	// difference. Any other value is an error.
	TCPTransport string
	// HotTermDF enables the hot-term advisory: index terms whose indexed
	// document frequency reaches this value are retired by their owners at
	// the next learning iteration (0 = off).
	HotTermDF int
	// Telemetry, if non-nil, receives metrics and query traces from every
	// layer: transport call/byte/latency accounting, Chord lookup hop
	// histograms and maintenance counters, and SPRITE indexing/learning/query
	// events. Create one with NewTelemetry; read it at any time with
	// WriteReport, WriteJSON, Handler, or Counter. Nil (the default) leaves
	// instrumentation off at near-zero cost.
	Telemetry *Telemetry
	// Cache configures the query-path caches (postings by term with
	// singleflight coalescing, whole results by query with a short TTL).
	// The zero value disables caching, preserving the paper's exact message
	// accounting. Caches are invalidated on every index mutation, so stale
	// postings are never served; see the README's Caching section for the
	// staleness/TTL trade-off under transport-level failures.
	Cache CacheOptions
	// Resilience configures the query path's fault tolerance: retry with
	// backoff, per-attempt timeouts, hedged fetches, and failover to the §7
	// successor replicas. The zero value disables it all — one attempt per
	// fetch, exactly the paper's message accounting. Validated in New.
	Resilience ResilienceOptions
	// Parallelism bounds the query execution engine's fan-out: how many
	// per-term pipelines (DHT lookup → postings fetch → history recording →
	// scoring) run concurrently per query, and how many documents the
	// learning/refresh sweeps process at once. 0 (the default) derives the
	// bound from GOMAXPROCS; 1 forces the legacy sequential path. Rankings,
	// query histories, and message accounting are bit-identical across
	// settings — only wall-clock latency changes.
	Parallelism int
	// Sketch enables vector-similarity retrieval: every shared document
	// carries a compact random-projection sketch of its term vector inside
	// its postings, and SearchSimilar finds a document's nearest neighbors
	// by routing through its learned index terms and re-ranking candidates
	// by sketch cosine. Costs ~Dims+2 bytes per stored posting when on.
	Sketch SketchOptions
	// VirtualTime runs the deployment on a deterministic discrete-event
	// clock (internal/vtime) instead of the wall clock: simulated link
	// latency, retry backoff, hedging triggers, per-attempt timeouts, and
	// cache TTLs all become scheduler events, so a 100k-peer,
	// million-query experiment "sleeps" through hours of simulated time in
	// seconds of wall time while producing bit-identical timelines for a
	// given seed. Requires the in-process simulator (incompatible with
	// TCP — real sockets cannot wait on virtual time; New returns an
	// error for the combination). Read the simulated elapsed time with
	// VirtualClock().
	VirtualTime bool
}

// ResilienceOptions tunes the fault-tolerant read path; see Options.Resilience
// and the README's "Fault tolerance" section.
type ResilienceOptions struct {
	// MaxRetries re-attempts a failed postings fetch against the same holder
	// (0 = single attempt).
	MaxRetries int
	// BaseBackoff caps the first retry's full-jitter sleep; each further
	// retry doubles the cap.
	BaseBackoff time.Duration
	// PerCallTimeout bounds each individual fetch attempt (0 = none).
	PerCallTimeout time.Duration
	// Hedge, when positive, duplicates a fetch that has not settled after
	// this long; the first usable answer wins.
	Hedge time.Duration
	// FailoverToReplicas retries a term whose holder stayed unreachable
	// against the successor peers holding its replicas. Requires
	// Replicas > 0 to find anything.
	FailoverToReplicas bool
}

// CacheOptions tunes the query-path caches; see Options.Cache.
type CacheOptions struct {
	// Enabled turns the caching layer on.
	Enabled bool
	// PostingsEntries caps the postings cache (default 4096 terms).
	PostingsEntries int
	// PostingsTTL bounds postings age; 0 keeps entries until the next index
	// mutation.
	PostingsTTL time.Duration
	// NoPostings disables the postings cache individually.
	NoPostings bool
	// ResultEntries caps the result cache (default 1024 queries).
	ResultEntries int
	// ResultTTL bounds result age (default 2s).
	ResultTTL time.Duration
	// NoResults disables the result cache individually.
	NoResults bool
}

// SketchOptions tunes vector-similarity retrieval; see Options.Sketch.
// Networks comparing or exchanging sketches must agree on all three of
// Dims, Seed, and the projection scheme — a sketch is only meaningful
// against sketches from the same configuration.
type SketchOptions struct {
	// Enabled turns sketching on: documents are sketched at share time and
	// SearchSimilar becomes available.
	Enabled bool
	// Dims is the sketch dimensionality (default 128). More dimensions
	// tighten the cosine estimate at one byte per dimension per posting.
	Dims int
	// RouteTerms caps how many of the query document's learned index terms
	// a similarity query routes through (default 6).
	RouteTerms int
	// Seed keys the projection directions (default 1). Distinct from
	// Options.Seed so stored sketches can stay comparable across
	// deployments that differ in simulation seed.
	Seed int64
	// Refine, when positive, re-scores the top Refine sketch candidates by
	// exact weighted cosine, fetching each one's term vector from its owner
	// (one extra message per candidate). Zero ranks by sketch cosine alone.
	Refine int
}

// CacheStats reports one cache's counters; see Network.CacheStats.
type CacheStats struct {
	Hits        int64 // lookups served from the cache
	Misses      int64 // lookups that went to the network
	Coalesced   int64 // lookups that piggybacked on an in-flight fetch
	Evictions   int64 // entries dropped for capacity
	Expirations int64 // entries dropped for age
	Entries     int   // current occupancy
	HitRate     float64
}

// IndexStats reports the block-compressed postings storage footprint,
// aggregated over every peer's primary index; see Network.IndexStats.
type IndexStats struct {
	Terms        int     // distinct terms with at least one posting
	Postings     int     // stored postings network-wide
	Blocks       int     // encoded blocks backing those postings
	EncodedBytes int     // total encoded size of all blocks
	BytesPerPost float64 // EncodedBytes / Postings (0 when empty)
}

// Result is one ranked search hit.
type Result struct {
	DocID string
	Score float64
	Owner string // the peer that shared the document
}

// Stats summarizes the simulated network traffic.
type Stats struct {
	Messages int64            // RPCs sent between distinct peers
	Bytes    int64            // simulated payload bytes
	ByType   map[string]int64 // message count per protocol message type
	Postings int              // index entries currently stored network-wide
	Peers    int              // alive peers
}

// Network is a running SPRITE deployment.
type Network struct {
	opts      Options
	analyzer  text.Analyzer
	transport simnet.Transport
	sim       *simnet.Network // nil in TCP mode
	vclk      *vtime.Sim     // nil unless Options.VirtualTime
	ring      *chord.Ring
	core      *core.Network
	peers     []string
}

// VirtualClock returns the deployment's deterministic event clock, or nil
// when the network runs on the wall clock (Options.VirtualTime unset). Use
// it to read simulated elapsed time (Elapsed) or to register experiment
// goroutines (Run/Go) so their sleeps participate in virtual scheduling.
func (n *Network) VirtualClock() *vtime.Sim { return n.vclk }

// New builds a network of opts.Peers peers, wires the Chord overlay, and
// attaches a SPRITE peer to every node.
func New(opts Options) (*Network, error) {
	if opts.Peers == 0 {
		opts.Peers = 16
	}
	if opts.Peers < 1 {
		return nil, fmt.Errorf("sprite: Peers = %d, need >= 1", opts.Peers)
	}
	if opts.PeerPrefix == "" {
		opts.PeerPrefix = "peer"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	reg := opts.Telemetry.registry()
	if opts.VirtualTime && opts.TCP {
		return nil, errors.New("sprite: VirtualTime requires the in-process simulator (incompatible with TCP)")
	}
	var (
		tport simnet.Transport
		sim   *simnet.Network
		vclk  *vtime.Sim
	)
	if opts.VirtualTime {
		vclk = vtime.NewSim()
	}
	if opts.TCP {
		switch opts.TCPTransport {
		case "", "pooled":
			tport = transport.New(transport.WithTelemetry(reg))
		case "dial":
			tport = nettransport.New(nettransport.WithTelemetry(reg))
		default:
			return nil, fmt.Errorf("sprite: TCPTransport = %q, want \"pooled\" or \"dial\"", opts.TCPTransport)
		}
	} else {
		snetOpts := []simnet.Option{simnet.WithTelemetry(reg)}
		if vclk != nil {
			snetOpts = append(snetOpts, simnet.WithClock(vclk))
		}
		sim = simnet.New(opts.Seed, snetOpts...)
		tport = sim
	}
	ring := chord.NewRing(tport, chord.Config{Telemetry: reg})
	if opts.TCP {
		addrs, err := nettransport.FreeAddrs(opts.Peers)
		if err != nil {
			return nil, fmt.Errorf("sprite: %w", err)
		}
		for _, a := range addrs {
			if _, err := ring.AddNode(string(a)); err != nil {
				return nil, fmt.Errorf("sprite: %w", err)
			}
		}
		if err := transportLastError(tport); err != nil {
			return nil, fmt.Errorf("sprite: %w", err)
		}
	} else if _, err := ring.AddNodes(opts.PeerPrefix, opts.Peers); err != nil {
		return nil, fmt.Errorf("sprite: %w", err)
	}
	ring.Build()
	var coreClock vtime.Clock
	if vclk != nil {
		coreClock = vclk
	}
	c, err := core.NewNetwork(ring, core.Config{
		Clock:             coreClock,
		InitialTerms:      opts.InitialTerms,
		TermsPerIteration: opts.TermsPerIteration,
		MaxIndexTerms:     opts.MaxIndexTerms,
		HistoryCap:        opts.HistoryCap,
		ReplicationFactor: opts.Replicas,
		HotTermDF:         opts.HotTermDF,
		Parallelism:       opts.Parallelism,
		Telemetry:         reg,
		Cache: core.CacheConfig{
			Enabled:         opts.Cache.Enabled,
			PostingsEntries: opts.Cache.PostingsEntries,
			PostingsTTL:     opts.Cache.PostingsTTL,
			DisablePostings: opts.Cache.NoPostings,
			ResultEntries:   opts.Cache.ResultEntries,
			ResultTTL:       opts.Cache.ResultTTL,
			DisableResults:  opts.Cache.NoResults,
		},
		Sketch: sketch.Config{
			Enabled:    opts.Sketch.Enabled,
			Dims:       opts.Sketch.Dims,
			RouteTerms: opts.Sketch.RouteTerms,
			Seed:       uint64(opts.Sketch.Seed),
			Refine:     opts.Sketch.Refine,
		},
		Resilience: core.ResilienceConfig{
			MaxRetries:         opts.Resilience.MaxRetries,
			BaseBackoff:        opts.Resilience.BaseBackoff,
			PerCallTimeout:     opts.Resilience.PerCallTimeout,
			HedgeAfter:         opts.Resilience.Hedge,
			FailoverToReplicas: opts.Resilience.FailoverToReplicas,
			JitterSeed:         opts.Seed,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("sprite: %w", err)
	}
	n := &Network{
		opts:      opts,
		analyzer:  text.Analyzer{KeepStopWords: opts.KeepStopWords, NoStemming: opts.NoStemming},
		transport: tport,
		sim:       sim,
		vclk:      vclk,
		ring:      ring,
		core:      c,
	}
	for _, p := range c.Peers() {
		n.peers = append(n.peers, string(p.Addr()))
	}
	return n, nil
}

// Peers returns the peer names, sorted.
func (n *Network) Peers() []string {
	out := make([]string, len(n.peers))
	copy(out, n.peers)
	return out
}

// Share publishes a document from the named owner peer. The raw text runs
// through the standard pipeline (tokenize, stop words, Porter stemming) and
// the document's most frequent terms become its initial global index terms.
// An unknown peer wraps ErrNoSuchPeer.
func (n *Network) Share(peer, docID, rawText string) error {
	return n.ShareCtx(context.Background(), peer, docID, rawText)
}

// ShareCtx is Share honoring ctx: the per-term DHT publications carry the
// caller's deadline and stop at the first cancellation.
func (n *Network) ShareCtx(ctx context.Context, peer, docID, rawText string) error {
	doc := corpus.NewDocumentFromText(n.analyzer, index.DocID(docID), rawText)
	if doc.Length == 0 {
		return fmt.Errorf("sprite: document %q has no indexable terms", docID)
	}
	return n.core.ShareCtx(ctx, simnet.Addr(peer), doc)
}

// ShareTerms publishes a pre-analyzed document given its term frequencies.
// Use this when the caller has already tokenized/stemmed the content.
func (n *Network) ShareTerms(peer, docID string, termFreq map[string]int) error {
	if len(termFreq) == 0 {
		return fmt.Errorf("sprite: document %q has no terms", docID)
	}
	tf := make(map[string]int, len(termFreq))
	for t, f := range termFreq {
		tf[t] = f
	}
	return n.core.Share(simnet.Addr(peer), corpus.NewDocument(index.DocID(docID), tf))
}

// Search runs a keyword query from the named peer and returns the top k
// results. The query text runs through the same pipeline as documents, and
// its keywords are cached at the contacted indexing peers, feeding future
// learning. Terms whose holders are unreachable are silently dropped from
// the ranking (use SearchCtx to observe them as ErrPartialResults).
func (n *Network) Search(peer, query string, k int) ([]Result, error) {
	res, err := n.SearchCtx(context.Background(), peer, query, k)
	return res, stripPartial(err)
}

// SearchCtx is Search under a context, with the full error contract:
// deadlines and cancellation reach every DHT hop and postings fetch, and a
// canceled context aborts the search with an error wrapping ctx.Err(). A
// search that lost some terms to unreachable holders returns the ranking
// over the remaining terms together with an error wrapping ErrPartialResults
// (inspect the dropped terms via errors.As with *PartialError). An unknown
// peer wraps ErrNoSuchPeer.
func (n *Network) SearchCtx(ctx context.Context, peer, query string, k int) ([]Result, error) {
	terms := n.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("sprite: query %q has no searchable terms", query)
	}
	return n.searchTermsCtx(ctx, peer, terms, k)
}

// SearchTerms runs a query given pre-analyzed terms, with Search's
// drop-silently degraded mode.
func (n *Network) SearchTerms(peer string, terms []string, k int) ([]Result, error) {
	res, err := n.SearchTermsCtx(context.Background(), peer, terms, k)
	return res, stripPartial(err)
}

// SearchTermsCtx is SearchTerms under a context, with the SearchCtx error
// contract.
func (n *Network) SearchTermsCtx(ctx context.Context, peer string, terms []string, k int) ([]Result, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("sprite: empty term list")
	}
	return n.searchTermsCtx(ctx, peer, terms, k)
}

func (n *Network) searchTermsCtx(ctx context.Context, peer string, terms []string, k int) ([]Result, error) {
	rl, err := n.core.SearchCtx(ctx, simnet.Addr(peer), terms, k)
	if err != nil && !errors.Is(err, ErrPartialResults) {
		return nil, err
	}
	out := make([]Result, 0, len(rl))
	for _, h := range rl {
		owner := ""
		if p, ok := n.core.Owner(h.Doc); ok {
			owner = string(p.Addr())
		}
		out = append(out, Result{DocID: string(h.Doc), Score: h.Score, Owner: owner})
	}
	return out, err
}

// SearchSimilar finds the k shared documents most similar to the named
// document, ranked by the cosine similarity of their sketches (the query
// document itself is excluded). Candidates are gathered by routing through
// the document's learned index terms — the same message bill as a keyword
// query over those terms — so it scales with the overlay, not the corpus.
// Requires Options.Sketch.Enabled (ErrSketchDisabled otherwise); an unshared
// document wraps ErrNoSuchDoc. Terms whose holders are unreachable are
// silently dropped (use SearchSimilarCtx to observe them).
func (n *Network) SearchSimilar(peer, docID string, k int) ([]Result, error) {
	res, err := n.SearchSimilarCtx(context.Background(), peer, docID, k)
	return res, stripPartial(err)
}

// SearchSimilarCtx is SearchSimilar under a context, with the SearchCtx
// error contract: cancellation aborts the query, and routing terms lost to
// unreachable holders surface as ErrPartialResults alongside the ranking
// over the remaining candidates.
func (n *Network) SearchSimilarCtx(ctx context.Context, peer, docID string, k int) ([]Result, error) {
	rl, err := n.core.SearchSimilarCtx(ctx, simnet.Addr(peer), index.DocID(docID), k)
	if err != nil && !errors.Is(err, ErrPartialResults) {
		return nil, err
	}
	out := make([]Result, 0, len(rl))
	for _, h := range rl {
		owner := ""
		if p, ok := n.core.Owner(h.Doc); ok {
			owner = string(p.Addr())
		}
		out = append(out, Result{DocID: string(h.Doc), Score: h.Score, Owner: owner})
	}
	return out, err
}

// stripPartial drops a partial-results error, restoring the pre-context
// entry points' contract (degraded results, nil error).
func stripPartial(err error) error {
	if errors.Is(err, ErrPartialResults) {
		return nil
	}
	return err
}

// Learn runs one learning iteration over every shared document: owners poll
// the indexing peers for the queries seen since the last iteration and
// re-tune their documents' index terms. It returns the number of index-term
// changes applied.
func (n *Network) Learn() (int, error) {
	return n.LearnCtx(context.Background())
}

// LearnCtx is Learn honoring ctx: polls and re-publications carry the
// caller's deadline and the sweep stops at the first cancellation.
func (n *Network) LearnCtx(ctx context.Context) (int, error) {
	return n.core.LearnAllCtx(ctx)
}

// IndexedTerms reports the current global index terms of a document.
func (n *Network) IndexedTerms(docID string) ([]string, error) {
	return n.core.IndexedTerms(index.DocID(docID))
}

// FailPeer simulates a crash of the named peer: it stops answering until
// RecoverPeer. Lookups route around it; with Replicas > 0 its index entries
// remain servable from successor replicas. No-op in TCP mode (real peers
// fail by going away, not by decree).
//
// The query caches are invalidated: a failure happens below the core's
// message handlers, so without the explicit drop a warm cache would keep
// serving the dead peer's postings past the configured TTL.
func (n *Network) FailPeer(peer string) {
	if fi, ok := n.transport.(simnet.FaultInjector); ok {
		fi.Fail(simnet.Addr(peer))
		n.core.InvalidateCaches()
	}
}

// RecoverPeer brings a failed peer back (invalidating the query caches, like
// FailPeer). No-op in TCP mode.
func (n *Network) RecoverPeer(peer string) {
	if fi, ok := n.transport.(simnet.FaultInjector); ok {
		fi.Recover(simnet.Addr(peer))
		n.core.InvalidateCaches()
	}
}

// Stabilize runs up to rounds rounds of Chord stabilization, repairing the
// overlay after failures or recoveries. It returns the rounds executed.
func (n *Network) Stabilize(rounds int) int { return n.ring.Stabilize(rounds) }

// Stats snapshots the simulated network counters and index footprint. In
// TCP mode only the index footprint and peer count are populated (per-call
// accounting is a simulator capability).
func (n *Network) Stats() Stats {
	out := Stats{
		Postings: n.core.TotalPostings(),
		Peers:    len(n.peers),
		ByType:   map[string]int64{},
	}
	if n.sim != nil {
		s := n.sim.Stats()
		out.Messages = s.Calls
		out.Bytes = s.Bytes
		out.ByType = s.CallsByType
		out.Peers = s.PeersAlive
	}
	return out
}

// IndexStats reports the block-compressed postings storage counters,
// aggregated across all peers' primary indexes — the storage-side companion
// of CacheStats.
func (n *Network) IndexStats() IndexStats {
	s := n.core.IndexStats()
	return IndexStats{
		Terms:        s.Terms,
		Postings:     s.Postings,
		Blocks:       s.Blocks,
		EncodedBytes: s.EncodedBytes,
		BytesPerPost: s.BytesPerPosting(),
	}
}

// CacheStats reports the postings and result cache counters. Both are zero
// when Options.Cache is disabled.
func (n *Network) CacheStats() (postings, results CacheStats) {
	return fromCacheStats(n.core.PostingsCacheStats()), fromCacheStats(n.core.ResultCacheStats())
}

func fromCacheStats(st cache.Stats) CacheStats {
	return CacheStats{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Coalesced:   st.Coalesced,
		Evictions:   st.Evictions,
		Expirations: st.Expirations,
		Entries:     st.Entries,
		HitRate:     st.HitRate(),
	}
}

// InvalidateCaches drops every cached postings list and query result. The
// core invalidates automatically on index mutations; call this when the
// network changed out of band (e.g. transport-level churn in TCP mode).
func (n *Network) InvalidateCaches() { n.core.InvalidateCaches() }

// ResetStats zeroes the traffic counters (the index footprint is
// unaffected). No-op in TCP mode.
func (n *Network) ResetStats() {
	if n.sim != nil {
		n.sim.ResetStats()
	}
}

// Close releases transport resources (TCP listeners, pooled connections).
// Simulated networks hold no external resources, so Close is then a no-op.
// The network is unusable afterwards.
func (n *Network) Close() {
	switch t := n.transport.(type) {
	case *nettransport.Transport:
		t.Close()
	case *transport.Transport:
		t.Close()
	}
}

// transportLastError surfaces a TCP transport's listener-binding failure;
// the Register interface cannot return one directly.
func transportLastError(t simnet.Transport) error {
	switch tt := t.(type) {
	case *nettransport.Transport:
		return tt.LastError()
	case *transport.Transport:
		return tt.LastError()
	}
	return nil
}

// Unshare withdraws a shared document: its index entries are removed from
// the network and the owner forgets it.
func (n *Network) Unshare(docID string) error {
	return n.core.Unshare(index.DocID(docID))
}

// Refresh re-publishes every shared document's index terms through fresh
// DHT lookups. After churn — failures, recoveries, new peers — the peer
// responsible for a term may have changed; Refresh migrates entries to the
// current owners, restoring findability. It returns the number of entries
// that moved.
//
// Refresh is the owner-driven O(index) sweep; ring membership changes no
// longer need it — JoinPeer and LeavePeer hand the affected arc's entries
// off peer-to-peer, and Repair reconciles any remainder.
func (n *Network) Refresh() (int, error) {
	return n.core.RefreshAll()
}

// JoinPeer adds a fresh peer to the running network: the node joins the
// Chord ring through an existing member, stabilization splices it in, and
// the join-time handoff migrates the index entries of its new arc from its
// successor — peer-driven, no owner refresh sweep involved. The name must
// not collide with an existing peer; in TCP mode it must be a bindable
// "host:port" address.
func (n *Network) JoinPeer(peer string) error {
	if _, ok := n.core.Peer(simnet.Addr(peer)); ok {
		return fmt.Errorf("sprite: peer %q already exists", peer)
	}
	var boot *chord.Node
	for _, nd := range n.ring.Nodes() {
		if n.sim == nil || n.sim.Alive(nd.Addr()) {
			boot = nd
			break
		}
	}
	if boot == nil {
		return fmt.Errorf("sprite: no alive peer to bootstrap %q", peer)
	}
	node, err := n.ring.AddNode(peer)
	if err != nil {
		return fmt.Errorf("sprite: %w", err)
	}
	n.core.Adopt(node)
	if err := node.Join(boot); err != nil {
		return fmt.Errorf("sprite: %w", err)
	}
	n.ring.StabilizeLists(64)
	n.ring.RepairFingers()
	n.core.InvalidateCaches()
	n.refreshPeerList()
	return nil
}

// LeavePeer departs the named peer gracefully: its shared documents are
// withdrawn (documents leave with their owner), its primary index entries
// hand off to its successor with the owners' records rewritten to match,
// and replica holders are told to retire its copies. It returns the number
// of index entries handed off. A failed peer cannot leave gracefully —
// recover it first or let repair reclaim its arc.
func (n *Network) LeavePeer(peer string) (handoffs int, err error) {
	rep, err := n.core.Leave(simnet.Addr(peer))
	if err != nil {
		return 0, fmt.Errorf("sprite: %w", err)
	}
	n.ring.StabilizeLists(64)
	n.ring.RepairFingers()
	n.core.InvalidateCaches()
	n.refreshPeerList()
	return rep.Handoffs, nil
}

// RepairStats reports one peer-driven maintenance sweep; see Repair.
type RepairStats struct {
	Moved      int // primary entries relocated to their arc owner
	Rounds     int // shed rounds until no entry moved
	Reconciles int // anti-entropy digest exchanges performed
	Divergent  int // terms whose replica lists were repaired
}

// Repair runs one peer-driven maintenance sweep: every peer sheds primary
// entries outside its arc back toward their owner, and (with Replicas > 0)
// reconciles its replica holders through compact Merkle digests, pushing
// only the divergent term lists. This is the churn-repair path the paper's
// owner refresh sweep used to cover, at O(entries in changed arcs) instead
// of O(index).
func (n *Network) Repair() RepairStats {
	st := n.core.Repair()
	n.core.FlushStaleAll()
	return RepairStats{Moved: st.Moved, Rounds: st.Rounds, Reconciles: st.Reconciles, Divergent: st.Divergent}
}

func (n *Network) refreshPeerList() {
	n.peers = n.peers[:0]
	for _, p := range n.core.Peers() {
		n.peers = append(n.peers, string(p.Addr()))
	}
}

// Expansion tunes SearchExpanded.
type Expansion struct {
	// FeedbackDocs is how many top first-phase results feed the analysis
	// (default 5).
	FeedbackDocs int
	// Terms is how many co-occurring terms are appended (default 3).
	Terms int
}

// SearchExpanded runs a query with local-context-analysis expansion: a
// first-phase search, co-occurrence analysis over the top results' term
// vectors (fetched from their owner peers), then a second search with the
// enriched query. It returns the results and the expansion terms applied.
func (n *Network) SearchExpanded(peer, query string, k int, opts Expansion) ([]Result, []string, error) {
	terms := n.analyzer.Terms(query)
	if len(terms) == 0 {
		return nil, nil, fmt.Errorf("sprite: query %q has no searchable terms", query)
	}
	rl, expansion, err := n.core.SearchExpanded(simnet.Addr(peer), terms, k, core.ExpandOptions{
		FeedbackDocs:   opts.FeedbackDocs,
		ExpansionTerms: opts.Terms,
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]Result, 0, len(rl))
	for _, h := range rl {
		owner := ""
		if p, ok := n.core.Owner(h.Doc); ok {
			owner = string(p.Addr())
		}
		out = append(out, Result{DocID: string(h.Doc), Score: h.Score, Owner: owner})
	}
	return out, expansion, nil
}

// Save serializes the network's complete SPRITE state — every peer's index,
// replicas, query history, and every owner's documents and learning
// statistics — so a long-running session can be checkpointed and resumed
// with Load. The overlay itself is not saved; it is reconstructed from the
// peer names when the network is rebuilt.
func (n *Network) Save(w io.Writer) error {
	return n.core.Snapshot(w)
}

// Load restores state saved by Save into this network. The network must
// have been created with the same peer configuration (same Peers count,
// prefix, and simulated transport); any state accumulated before Load is
// discarded.
func (n *Network) Load(r io.Reader) error {
	return n.core.Restore(r)
}
