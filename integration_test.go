package sprite

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestFullLifecycle exercises every public capability in one coherent
// scenario: a small library of documents is shared, searched, learned over,
// expanded, checkpointed, damaged by churn, healed by refresh, and finally
// partially withdrawn — asserting the visible behaviour at each step.
func TestFullLifecycle(t *testing.T) {
	net := newNet(t, Options{
		Peers:             16,
		Seed:              77,
		InitialTerms:      2,
		TermsPerIteration: 3,
		MaxIndexTerms:     8,
		Replicas:          1,
	})

	// --- Share a small library.
	// Texts repeat their salient words so the 2-term frequency pick indexes
	// them (consensus for raft/paxos, chord, bloom).
	library := map[string]string{
		"raft":  "raft consensus: the raft consensus algorithm elects a leader and replicates an ordered log",
		"paxos": "paxos consensus: the paxos consensus protocol uses proposers acceptors and ballots to agree",
		"chord": "chord lookup: the chord lookup protocol routes through finger tables over a hashing ring",
		"bloom": "bloom filters: a bloom filter trades false positives for compact set membership",
	}
	peers := net.Peers()
	i := 0
	for id, text := range library {
		if err := net.Share(peers[i%len(peers)], id, text); err != nil {
			t.Fatalf("share %s: %v", id, err)
		}
		i++
	}
	if s := net.Stats(); s.Postings != 4*2 {
		t.Fatalf("initial postings = %d, want 8 (4 docs × 2 terms)", s.Postings)
	}

	// --- Search on initially indexed terms works...
	res, err := net.Search(peers[9], "consensus", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("consensus should match raft and paxos: %v", res)
	}

	// --- ...and search on deep terms misses until users query them.
	if res, _ = net.Search(peers[9], "finger tables", 10); len(res) != 0 {
		// "finger" may or may not be in chord's top-2; accept either but
		// remember the state for the learning assertion below.
		t.Logf("finger already indexed initially: %v", res)
	}
	// Users pair known terms with deep ones; the network remembers.
	for j := 0; j < 3; j++ {
		if _, err := net.Search(peers[j], "chord finger ring", 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Learn(); err != nil {
		t.Fatal(err)
	}
	res, err = net.Search(peers[9], "finger", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].DocID != "chord" {
		t.Fatalf("learning did not surface 'finger': %v", res)
	}

	// --- Expanded search pulls in related vocabulary.
	exp, terms, err := net.SearchExpanded(peers[4], "ballots", 10, Expansion{Terms: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) == 0 || len(terms) == 0 {
		t.Fatalf("expansion degenerate: %v / %v", exp, terms)
	}

	// --- Checkpoint.
	var snap bytes.Buffer
	if err := net.Save(&snap); err != nil {
		t.Fatal(err)
	}

	// --- Churn: fail a third of the peers; replicas keep queries working.
	for _, victim := range peers[4:9] {
		net.FailPeer(victim)
	}
	afterFail, err := net.Search(peers[0], "consensus", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(afterFail) == 0 {
		t.Fatal("replication failed to keep 'consensus' findable")
	}

	// --- Recover and heal: stabilize the overlay, refresh the entries.
	for _, victim := range peers[4:9] {
		net.RecoverPeer(victim)
	}
	net.Stabilize(100)
	if _, err := net.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, err = net.Search(peers[9], "finger", 10)
	if err != nil || len(res) != 1 {
		t.Fatalf("post-heal search broken: %v %v", res, err)
	}

	// --- Withdraw a document; it vanishes everywhere.
	if err := net.Unshare("bloom"); err != nil {
		t.Fatal(err)
	}
	if res, _ := net.Search(peers[2], "bloom filters", 10); len(res) != 0 {
		t.Fatalf("unshared document still findable: %v", res)
	}

	// --- Restore the checkpoint: bloom is back, learning state intact.
	fresh := newNet(t, Options{
		Peers:             16,
		Seed:              77,
		InitialTerms:      2,
		TermsPerIteration: 3,
		MaxIndexTerms:     8,
		Replicas:          1,
	})
	if err := fresh.Load(&snap); err != nil {
		t.Fatal(err)
	}
	res, err = fresh.Search(fresh.Peers()[2], "bloom", 10)
	if err != nil || len(res) != 1 {
		t.Fatalf("restored network lost bloom: %v %v", res, err)
	}
	chordTerms, _ := fresh.IndexedTerms("chord")
	if !contains(chordTerms, "finger") {
		t.Fatalf("restored network lost learned term: %v", chordTerms)
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestLifecycleDeterminism runs a multi-phase scenario twice end-to-end and
// demands bit-identical observable behaviour — the reproducibility guarantee
// the experiment harness rests on.
func TestLifecycleDeterminism(t *testing.T) {
	run := func() string {
		net := newNet(t, Options{Peers: 12, Seed: 55, InitialTerms: 2, TermsPerIteration: 2, MaxIndexTerms: 6})
		var out strings.Builder
		for d := 0; d < 10; d++ {
			id := fmt.Sprintf("doc%d", d)
			text := fmt.Sprintf("subject%d topic%d detail%d shared vocabulary corpus", d, d%3, d%5)
			if err := net.Share(net.Peers()[d%12], id, text); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 8; q++ {
			res, err := net.Search(net.Peers()[(q*5)%12], fmt.Sprintf("topic%d vocabulary", q%3), 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				fmt.Fprintf(&out, "%s:%.6f;", r.DocID, r.Score)
			}
			out.WriteByte('\n')
		}
		changes, err := net.Learn()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "changes=%d\n", changes)
		for d := 0; d < 10; d++ {
			terms, _ := net.IndexedTerms(fmt.Sprintf("doc%d", d))
			fmt.Fprintf(&out, "%v\n", terms)
		}
		s := net.Stats()
		fmt.Fprintf(&out, "msgs=%d bytes=%d postings=%d\n", s.Messages, s.Bytes, s.Postings)
		return out.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}
